//! Reachable-marking enumeration: event net → CTMC (Theorem 2).
//!
//! BFS over markings.  For *safe* nets (the Strict TPNs; resource cycles
//! are invariant-bounded to one token) markings stay 0/1 and the chain is
//! the paper's construction verbatim.  For nets with unbounded places (the
//! forward places of Overlap TPNs taken globally) a finite **capacity**
//! must be supplied: a transition is then blocked while one of its output
//! places is at capacity.  Capping adds back-pressure, so the computed
//! throughput under-estimates the infinite-buffer value and increases to it
//! as the capacity grows — the validation experiments sweep the capacity.
//!
//! # Hot-path layout
//!
//! The BFS allocates nothing per firing:
//!
//! * **marking arena** — all reachable markings live in one flat `Vec<u8>`
//!   ([`MarkingStore`]), state `s` at byte offset `s · n_places`.  The
//!   seed kept one `Box<[u8]>` per state *plus* a clone of each as the
//!   hash-map key; on capacity sweeps that was two heap allocations and
//!   ~3× the bytes per state;
//! * **offset-keyed interner** — deduplication probes an open-addressing
//!   table of state ids whose keys *are* arena offsets (slices are
//!   re-read from the arena on compare), so no owned key is ever built;
//! * **scratch successor** — each firing writes the successor marking into
//!   one reused scratch buffer; it is copied into the arena only when the
//!   marking turns out to be new;
//! * **packed-u64 fast path** — nets with ≤ 8 places and token counts
//!   ≤ 255 (every Theorem 3 pattern with `u·v ≤ 4`, and the small tandem
//!   sweeps) keep markings in a single machine word: firing is two mask
//!   adds, the enabledness test is a branch-free zero-byte probe, and
//!   interning hashes one `u64`;
//! * **flat CSR outputs** — both the chain (via [`crate::ctmc::CsrBuilder`])
//!   and the per-state enabled-transition sets are built directly in
//!   compressed sparse row form; `enabled` was previously one `Vec` per
//!   state.
//!
//! # Direct quotient construction
//!
//! When the net carries a validated rate-preserving automorphism (the TPN
//! row-rotation in the homogeneous setting of Theorem 2),
//! [`QuotientGraph::build`] explores the state space **directly in the
//! quotient**: every successor marking is canonicalized under the
//! automorphism's cyclic group
//! ([`repstream_petri::canon::MarkingCanonicalizer`]) before interning, so
//! the arena only ever holds one representative per orbit — the peak
//! interned-state count is `full / m` on free orbits — and the CSR is
//! emitted with orbit-aggregated rates.  The resulting chain (and its
//! uniform [`Lift`]) is **bitwise identical** to
//! building the full chain and lumping it through
//! [`MarkingGraph::orbit_partition`] +
//! [`Ctmc::quotient`](crate::ctmc::Ctmc::quotient), without ever
//! materializing the full graph or running the orbit/refinement passes.
//! See the [`QuotientGraph`] docs for why the state numbering and rate
//! arithmetic coincide exactly.
//!
//! # Chunk-parallel frontier BFS
//!
//! The queue of a breadth-first search is naturally level-structured: at
//! any moment the discovered-but-unexplored states `frontier..n_states`
//! form a batch whose rows can be scanned independently — every state a
//! row fires into is either already interned (id known) or new to the
//! whole level.  [`MarkingOptions::threads`] splits each such level into
//! one contiguous chunk per `std::thread::scope` worker:
//!
//! * **workers** scan their chunk's rows exactly like the sequential
//!   loop — enabledness, firing, canonicalization (with per-thread
//!   rotation/scratch buffers) — but resolve successor targets against a
//!   **level-frozen** view of the interner.  A miss is deduplicated into
//!   a chunk-local key list instead of being interned; each firing is
//!   staged as a `(transition, target-or-local-key)` record;
//! * the **merge** replays the staged firings sequentially in chunk order
//!   (= global state order), interning each chunk-local key at its first
//!   use.  Because the replay order is the sequential scan order, new
//!   states receive exactly the ids the sequential build assigns, the CSR
//!   rows come out in the same first-hit order, and every `f64` addition
//!   of the rate aggregation happens in the same sequence — the output is
//!   **bitwise identical for any thread count** (the same contract the
//!   parallel power sweep and the engine's batch scorer honor).  Budget
//!   (`TooManyStates`), safety (`NotSafe`) and `Deadlock` errors surface
//!   at the same point of the replay as in the sequential scan.
//!
//! The parallel driver covers the two arena paths — the plain
//! [`MarkingGraph`] BFS (which is also what the quotient degenerates to
//! at `m = 1`) and the rotation-buffer quotient path — where the big
//! chains live; the packed-word paths (≤ 8 places) and the per-firing
//! quotient fallback stay sequential, their state spaces being too small
//! or too budget-bound to amortize a spawn.

use crate::ctmc::{CsrBuilder, Ctmc, SolveReport, SolverChoice};
use crate::fxhash::FxHashMap;
use crate::govern::{Budget, Interrupt, Phase, Progress};
use crate::lump::{Lift, Partition};
use crate::net::{EventNet, NetSymmetry};
use repstream_petri::canon::{CanonScratch, MarkingCanonicalizer};
use std::hash::Hasher;

/// When the delta-compressed marking arena engages (see the
/// `MarkingArena` encoding notes in the module source and the
/// `arena_memory` section of `BENCH_ctmc.json` for measured ratios).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArenaCompression {
    /// Store verbatim until a flat arena would exceed
    /// [`ARENA_COMPRESS_THRESHOLD`] bytes, then delta-encode (the
    /// conversion re-encodes what is already stored; output bits are
    /// unaffected either way).
    #[default]
    Auto,
    /// Delta-encode from the first marking (what the bitwise A/B tests
    /// force so small shapes exercise the compressed path).
    On,
    /// Never compress (the historical flat layout).
    Off,
}

/// Flat-arena byte size above which [`ArenaCompression::Auto`] converts
/// to the delta encoding.  8 MiB per arena: small enough that the
/// million-state quotient builds (the 6×7-and-beyond class) compress
/// long before the interner becomes the memory ceiling, large enough
/// that the sub-100k-state chains of the interactive paths keep the
/// zero-decode flat layout.
pub const ARENA_COMPRESS_THRESHOLD: usize = 8 << 20;

/// Options for marking-graph construction.
#[derive(Debug, Clone, Copy)]
pub struct MarkingOptions {
    /// Hard cap on the number of states (construction fails beyond it).
    pub max_states: usize,
    /// Per-place token capacity.  `None` requires the net to be safe: the
    /// builder fails if any place would exceed one token.
    pub capacity: Option<u32>,
    /// Worker threads of the chunk-parallel frontier BFS (see the module
    /// docs).  `0` (the default) auto-sizes to the machine's core count,
    /// engaging only on levels large enough to amortize the spawns; an
    /// explicit count is honored on any level with at least that many
    /// pending states (`1` forces the sequential scan).  Every choice
    /// produces **bitwise-identical** output.
    pub threads: usize,
    /// Pending states each auto-sized BFS worker must get before a level
    /// is chunked.  `0` (the default) reads `REPSTREAM_BFS_MIN_STATES_PER_WORKER`
    /// from the environment, falling back to 256 — so multi-core
    /// retuning needs no code change.  Output is bitwise identical for
    /// any value (the gate only decides *whether* to spawn).
    pub min_states_per_worker: usize,
    /// Delta compression of the marking arenas (keys and representatives;
    /// the packed-u64 ≤ 8-place fast path is unaffected).  Compression
    /// changes only how markings are *stored* — BFS order, interned ids
    /// and all emitted chain bits are identical in every mode.
    pub arena_compression: ArenaCompression,
    /// Shard count of the two-level interner (rounded up to a power of
    /// two, capped at [`MAX_INTERNER_SHARDS`]).  `0` (the default) reads
    /// `REPSTREAM_INTERNER_SHARDS` from the environment, falling back to
    /// 16 shards for budgets of 2^18 states and above and a single shard
    /// below.  Sharding reorganizes only the hash table — ids are still
    /// assigned in sequential scan/merge order and dedup is exact byte
    /// equality, so output is **bitwise identical** for any shard count.
    pub interner_shards: usize,
    /// Spill the marking arenas' byte payloads (not the slot tables) to
    /// an unlinked temp file once they outgrow [`Self::spill_limit`], so
    /// peak RSS stays bounded on 10M+-state builds.  Storage-only: every
    /// read decodes through the same byte sequence, so chains are
    /// bitwise identical with spill on or off.  Trades wall clock
    /// (collision probes against spilled markings re-read from the file)
    /// for memory; no-op on non-Unix targets.
    pub interner_spill: bool,
    /// In-memory payload bytes each arena keeps resident before flushing
    /// to the spill file (only meaningful with
    /// [`Self::interner_spill`]).  `0` (the default) reads
    /// `REPSTREAM_SPILL_MIB` from the environment, falling back to
    /// 64 MiB per arena.
    pub spill_limit: usize,
    /// Cooperative resource limits ([`Budget`]), checked once per BFS
    /// level.  The default [`Budget::UNLIMITED`] never fires; output is
    /// bitwise identical for any budget, as long as no limit fires —
    /// the checks only decide *whether to abort*, never what to emit.
    pub budget: Budget,
}

impl Default for MarkingOptions {
    fn default() -> Self {
        MarkingOptions {
            max_states: 1 << 20,
            capacity: None,
            threads: 0,
            min_states_per_worker: 0,
            arena_compression: ArenaCompression::Auto,
            interner_shards: 0,
            interner_spill: false,
            spill_limit: 0,
            budget: Budget::UNLIMITED,
        }
    }
}

impl MarkingOptions {
    /// Resolved per-arena resident-byte bound of the spill machinery:
    /// `usize::MAX` (never spill) unless [`Self::interner_spill`] is set,
    /// then [`Self::spill_limit`] or its environment default.
    fn resolved_spill_limit(&self) -> usize {
        if !self.interner_spill {
            return usize::MAX;
        }
        if self.spill_limit > 0 {
            return self.spill_limit;
        }
        static LIMIT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        *LIMIT.get_or_init(|| {
            std::env::var("REPSTREAM_SPILL_MIB")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&v| v > 0)
                .unwrap_or(64)
                << 20
        })
    }

    /// Resolved shard count of the two-level interner (see
    /// [`Self::interner_shards`]).
    fn resolved_interner_shards(&self) -> usize {
        if self.interner_shards > 0 {
            return self
                .interner_shards
                .next_power_of_two()
                .min(MAX_INTERNER_SHARDS);
        }
        static SHARDS: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
        let env = *SHARDS.get_or_init(|| {
            std::env::var("REPSTREAM_INTERNER_SHARDS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&v| v > 0)
        });
        if let Some(n) = env {
            return n.next_power_of_two().min(MAX_INTERNER_SHARDS);
        }
        if self.max_states >= (1 << 18) {
            16
        } else {
            1
        }
    }
}

/// Upper bound on [`MarkingOptions::interner_shards`].  256 shards keep
/// the per-shard budget ≥ 2^15 states even at the 2^31 id ceiling; more
/// shards would only add top-bit collisions without spreading work.
pub const MAX_INTERNER_SHARDS: usize = 256;

/// Which spill-file operation failed (see [`SpillIoError`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillOp {
    /// A positioned read of spilled payload bytes.
    Read,
    /// A positioned write flushing resident payload bytes.
    Write,
}

impl SpillOp {
    fn label(self) -> &'static str {
        match self {
            SpillOp::Read => "read",
            SpillOp::Write => "write",
        }
    }
}

/// A failed spill-file operation: what was attempted, at which payload
/// byte offset, and the underlying I/O error (shared behind an `Arc`
/// because `io::Error` is not `Clone`).
#[derive(Debug, Clone)]
pub struct SpillIoError {
    /// The operation that failed.
    pub op: SpillOp,
    /// Byte offset into the spill payload at which it failed.
    pub offset: u64,
    /// The underlying I/O error.
    pub source: std::sync::Arc<std::io::Error>,
}

impl PartialEq for SpillIoError {
    fn eq(&self, other: &Self) -> bool {
        // `io::Error` carries no equality; the kind is what callers
        // match on.
        self.op == other.op
            && self.offset == other.offset
            && self.source.kind() == other.source.kind()
    }
}

impl Eq for SpillIoError {}

/// Failure modes of the marking BFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarkingError {
    /// The reachable set exceeded `max_states`.
    TooManyStates(usize),
    /// A place exceeded one token while `capacity` was `None`.
    NotSafe {
        /// The offending place.
        place: usize,
    },
    /// No transition is enabled in some reachable marking.
    Deadlock,
    /// A spill-file read or write failed.  The build aborts at the next
    /// level boundary; no temp files are leaked (spill files are
    /// unlinked at creation, or deleted on drop when that failed).
    SpillIo(SpillIoError),
    /// The resource governor fired (deadline, cancellation, memory cap
    /// — see [`Interrupt`]).
    Interrupted(Interrupt),
}

impl MarkingError {
    /// The governor interrupt behind this error, when that is what it
    /// is — callers that degrade to bounds match on this.
    pub fn interrupt(&self) -> Option<Interrupt> {
        match self {
            MarkingError::Interrupted(i) => Some(*i),
            _ => None,
        }
    }
}

impl From<Interrupt> for MarkingError {
    fn from(i: Interrupt) -> Self {
        MarkingError::Interrupted(i)
    }
}

impl std::fmt::Display for MarkingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarkingError::TooManyStates(n) => write!(f, "marking graph exceeds {n} states"),
            MarkingError::NotSafe { place } => {
                write!(
                    f,
                    "net is not safe: place {place} exceeds one token (supply a capacity)"
                )
            }
            MarkingError::Deadlock => write!(f, "reachable deadlock marking"),
            MarkingError::SpillIo(e) => {
                write!(
                    f,
                    "spill {} failed at byte {}: {}",
                    e.op.label(),
                    e.offset,
                    e.source
                )
            }
            MarkingError::Interrupted(i) => write!(f, "{i}"),
        }
    }
}

impl std::error::Error for MarkingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MarkingError::SpillIo(e) => Some(e.source.as_ref()),
            MarkingError::Interrupted(i) => Some(i),
            _ => None,
        }
    }
}

/// LEB128-encode `v` (7 payload bits per byte, high bit = continue).
#[inline]
fn push_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

/// Encoded byte length of `v` under [`push_varint`].
#[inline]
fn varint_len(v: u32) -> usize {
    match v {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

/// Decode one varint at `off`, returning `(value, next offset)`.
#[inline]
fn read_varint(buf: &[u8], mut off: usize) -> (u32, usize) {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let b = buf[off];
        off += 1;
        v |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return (v, off);
        }
        shift += 7;
    }
}

/// The marking arena: append-only storage of fixed-width byte markings,
/// flat or **delta-compressed**.
///
/// # Flat layout
///
/// Marking `s` is the `width`-byte slice at offset `s · width` of one
/// `Vec<u8>` — the historical layout, zero-cost to read.
///
/// # Delta layout
///
/// Markings of one BFS level differ in few places (each successor is its
/// parent ± the fired transition's places, and parents within a level are
/// themselves close), so each entry is encoded against a **base** marking
/// of its level:
///
/// * a base is stored verbatim: varint header `0`, then `width` bytes;
/// * any other entry stores header `ndiffs + 1` followed by `ndiffs`
///   `(varint position gap, new byte)` pairs against its base;
/// * an entry whose delta would not beat half the verbatim cost is itself
///   stored verbatim and **becomes the new base** — bases refresh as a
///   level drifts, bounding every entry below `1 + width/2` bytes plus
///   the 8-byte offset/base bookkeeping while keeping decode depth at
///   one (a delta never chains through another delta).
///
/// [`MarkingArena::begin_level`] marks level boundaries (the next push
/// starts a fresh base); under [`ArenaCompression::Auto`] the arena
/// starts flat and converts in place when it crosses
/// [`ARENA_COMPRESS_THRESHOLD`] — base bookkeeping is maintained while
/// flat so the conversion re-encodes exactly what a compressed-from-birth
/// arena would hold.  Compression affects storage only: ids, push order
/// and every read are identical in all modes.
#[derive(Debug, Clone)]
struct MarkingArena {
    width: usize,
    len: usize,
    /// Verbatim payload (flat mode): marking `s` at `s · width`.
    flat: Vec<u8>,
    /// Encoded payload (compressed mode).
    enc: Vec<u8>,
    /// Start offset in `enc` of each entry (compressed mode).
    entry_ptr: Vec<u32>,
    /// Base state of each entry (maintained while flat too — unless the
    /// threshold is infinite — so a mid-build conversion knows every
    /// entry's level base).
    base_of: Vec<u32>,
    compressed: bool,
    /// Flat bytes above which the arena converts; `usize::MAX` = never.
    threshold: usize,
    /// Current base state (always stored verbatim).
    cur_base: u32,
    /// Set by [`Self::begin_level`]: the next push starts a new base.
    new_level: bool,
    /// Verbatim bytes of the current base (compressed mode): the delta
    /// coster/encoder reads the base from here instead of `enc`, so base
    /// bytes never have to be re-read from a spilled payload.
    base_cache: Vec<u8>,
    /// Resident payload bytes kept before flushing to the spill file;
    /// `usize::MAX` disables spilling (see
    /// [`MarkingOptions::interner_spill`]).
    spill_limit: usize,
    /// Lazily-created spill region (first flush).
    spill: Option<SpillFile>,
    /// First spill I/O failure.  The `&self` decode paths (`copy_to`,
    /// `matches`, `hash_entry`) are shared immutably by the parallel
    /// BFS workers and stay infallible: on a read error they record it
    /// here and return deterministic zero-filled bytes; the BFS drivers
    /// drain the slot at level boundaries into
    /// [`MarkingError::SpillIo`], discarding the garbage level.
    poison: std::sync::OnceLock<SpillIoError>,
}

/// Temp-file-backed spill region of one arena: the first `spilled` bytes
/// of the active payload (flat or delta-encoded, whichever layout is
/// live) sit in an **unlinked** temp file — space is reclaimed by the OS
/// when the last handle drops — and the payload `Vec` holds only the
/// tail.  Reads go through positioned I/O (`pread`), so level-frozen
/// parallel workers can probe spilled markings concurrently.  Clones
/// share the file; that is sound because graphs are only cloned after
/// their build finishes (the payload is append-only and frozen by then).
#[derive(Debug, Clone)]
struct SpillFile {
    file: std::sync::Arc<std::fs::File>,
    spilled: usize,
    /// Retained only when the immediate unlink failed (the normal case
    /// deletes the directory entry at creation): the last clone removes
    /// the file on drop, so no temp file leaks on any path — error
    /// paths included.
    _cleanup: Option<std::sync::Arc<CleanupPath>>,
}

/// Deletes the named file when dropped (the unlink-failed fallback of
/// `SpillFile::create`).
#[derive(Debug)]
struct CleanupPath(std::path::PathBuf);

impl Drop for CleanupPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

impl SpillFile {
    /// Open an unlinked temp file under `REPSTREAM_SPILL_DIR` (default:
    /// the system temp dir).  `None` when creation fails or the target
    /// has no positioned-I/O support — the arena then stays in memory.
    fn create() -> Option<Self> {
        #[cfg(unix)]
        {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::var_os("REPSTREAM_SPILL_DIR")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(std::env::temp_dir);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let path = dir.join(format!("repstream-spill-{}-{n}.bin", std::process::id()));
            let file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create_new(true)
                .open(&path)
                .ok()?;
            let cleanup = match std::fs::remove_file(&path) {
                Ok(()) => None,
                Err(_) => Some(std::sync::Arc::new(CleanupPath(path))),
            };
            Some(SpillFile {
                file: std::sync::Arc::new(file),
                spilled: 0,
                _cleanup: cleanup,
            })
        }
        #[cfg(not(unix))]
        {
            None
        }
    }

    fn read_exact_at(&self, buf: &mut [u8], off: u64) -> std::io::Result<()> {
        #[cfg(feature = "fault-inject")]
        if let Some(e) = crate::fault::spill_read_fault() {
            return Err(e);
        }
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, off)
        }
        #[cfg(not(unix))]
        {
            let _ = (buf, off);
            unreachable!("spill files are never created off-Unix");
        }
    }

    fn write_all_at(&self, buf: &[u8], off: u64) -> std::io::Result<()> {
        #[cfg(feature = "fault-inject")]
        if let Some(e) = crate::fault::spill_write_fault() {
            return Err(e);
        }
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.write_all_at(buf, off)
        }
        #[cfg(not(unix))]
        {
            let _ = (buf, off);
            unreachable!("spill files are never created off-Unix");
        }
    }
}

thread_local! {
    /// Scratch pair (entry bytes, base bytes) for reads that touch a
    /// spilled payload — per thread so frozen-interner probes of the
    /// parallel BFS workers stay allocation-free after warm-up.
    static SPILL_SCRATCH: std::cell::RefCell<(Vec<u8>, Vec<u8>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

impl MarkingArena {
    fn new(width: usize, compression: ArenaCompression) -> Self {
        Self::with_spill(width, compression, usize::MAX)
    }

    /// Like [`Self::new`] with a resident-payload bound: once the active
    /// payload `Vec` reaches `spill_limit` bytes it is flushed to the
    /// spill file (`usize::MAX` = never).
    fn with_spill(width: usize, compression: ArenaCompression, spill_limit: usize) -> Self {
        let (compressed, threshold) = match compression {
            ArenaCompression::Off => (false, usize::MAX),
            ArenaCompression::Auto => (false, ARENA_COMPRESS_THRESHOLD),
            ArenaCompression::On => (true, 0),
        };
        MarkingArena {
            width,
            len: 0,
            flat: Vec::new(),
            enc: Vec::new(),
            entry_ptr: Vec::new(),
            base_of: Vec::new(),
            compressed,
            threshold,
            cur_base: 0,
            new_level: false,
            base_cache: Vec::new(),
            spill_limit,
            spill: None,
            poison: std::sync::OnceLock::new(),
        }
    }

    /// Wrap already-materialized flat bytes (the packed paths).
    fn from_flat(width: usize, data: Vec<u8>) -> Self {
        let len = data.len() / width.max(1);
        MarkingArena {
            width,
            len,
            flat: data,
            enc: Vec::new(),
            entry_ptr: Vec::new(),
            base_of: Vec::new(),
            compressed: false,
            threshold: usize::MAX,
            cur_base: 0,
            new_level: false,
            base_cache: Vec::new(),
            spill_limit: usize::MAX,
            spill: None,
            poison: std::sync::OnceLock::new(),
        }
    }

    /// Number of stored markings.
    fn len(&self) -> usize {
        self.len
    }

    /// Places per marking.
    fn width(&self) -> usize {
        self.width
    }

    /// `true` once the delta encoding is active.
    fn is_compressed(&self) -> bool {
        self.compressed
    }

    /// Mark a BFS level boundary: the next pushed marking becomes the
    /// base its level's entries are encoded against.
    fn begin_level(&mut self) {
        self.new_level = true;
    }

    /// Append a marking (its id is the current [`Self::len`]).
    fn push(&mut self, m: &[u8]) {
        debug_assert_eq!(m.len(), self.width);
        let id = self.len;
        self.len = id + 1;
        if self.compressed {
            self.push_encoded(m, id);
        } else {
            if self.threshold != usize::MAX {
                let base = if self.new_level || id == 0 {
                    id as u32
                } else {
                    self.cur_base
                };
                self.new_level = false;
                self.cur_base = base;
                self.base_of.push(base);
            }
            self.flat.extend_from_slice(m);
            if self.flat.len() + self.spilled() > self.threshold {
                self.convert();
            }
        }
        if self.payload_vec().len() >= self.spill_limit {
            self.flush_spill();
        }
    }

    /// Encode one entry (compressed mode): delta against the current base
    /// when that wins, verbatim-as-new-base otherwise (see the type docs).
    /// The base bytes come from [`Self::base_cache`], so encoding never
    /// reads back through the (possibly spilled) payload.
    fn push_encoded(&mut self, m: &[u8], id: usize) {
        self.entry_ptr.push(self.payload_len() as u32);
        let start_base = self.new_level || id == 0;
        self.new_level = false;
        if !start_base {
            // Cost the delta first: gap varints plus one value byte each.
            let mut ndiffs = 0u32;
            let mut cost = 0usize;
            let mut prev = 0usize;
            for (p, &v) in m.iter().enumerate().take(self.width) {
                if v != self.base_cache[p] {
                    cost += varint_len((p - prev) as u32) + 1;
                    prev = p;
                    ndiffs += 1;
                }
            }
            cost += varint_len(ndiffs + 1);
            if cost < 1 + self.width / 2 {
                self.base_of.push(self.cur_base);
                push_varint(&mut self.enc, ndiffs + 1);
                let mut prev = 0usize;
                for (p, &v) in m.iter().enumerate().take(self.width) {
                    if v != self.base_cache[p] {
                        push_varint(&mut self.enc, (p - prev) as u32);
                        self.enc.push(v);
                        prev = p;
                    }
                }
                return;
            }
        }
        self.base_of.push(id as u32);
        self.cur_base = id as u32;
        self.enc.push(0);
        self.enc.extend_from_slice(m);
        self.base_cache.clear();
        self.base_cache.extend_from_slice(m);
    }

    /// Flat → delta conversion when [`ArenaCompression::Auto`] crosses
    /// the threshold: re-encode every stored marking against its recorded
    /// level base.  Storage-only — ids and reads are unaffected.  A
    /// spilled flat payload is read back first; the spill file is then
    /// reused from offset 0 for the encoded payload.
    #[cold]
    fn convert(&mut self) {
        let mut flat = std::mem::take(&mut self.flat);
        let mut read_err = None;
        if let Some(sp) = &mut self.spill {
            if sp.spilled > 0 {
                let mut full = vec![0u8; sp.spilled + flat.len()];
                let (head, tail) = full.split_at_mut(sp.spilled);
                if let Err(e) = sp.read_exact_at(head, 0) {
                    // Re-encode zeroes; the poison drain at the next
                    // level boundary discards everything anyway.
                    read_err = Some(e);
                }
                tail.copy_from_slice(&flat);
                flat = full;
                sp.spilled = 0;
            }
        }
        if let Some(e) = read_err {
            self.poison_read(0, e);
        }
        let bases = std::mem::take(&mut self.base_of);
        let w = self.width.max(1);
        self.compressed = true;
        self.enc = Vec::with_capacity(flat.len() / 4);
        self.entry_ptr = Vec::with_capacity(self.len);
        let pending_level = self.new_level;
        for (s, &b) in bases.iter().enumerate() {
            self.new_level = b as usize == s;
            self.push_encoded(&flat[s * w..(s + 1) * w], s);
        }
        self.new_level = pending_level;
    }

    /// Payload bytes already flushed to the spill file.
    #[inline]
    fn spilled(&self) -> usize {
        self.spill.as_ref().map_or(0, |s| s.spilled)
    }

    /// The in-memory tail of the active payload layout.
    #[inline]
    fn payload_vec(&self) -> &Vec<u8> {
        if self.compressed {
            &self.enc
        } else {
            &self.flat
        }
    }

    /// Total payload length, spilled prefix included.
    #[inline]
    fn payload_len(&self) -> usize {
        self.spilled() + self.payload_vec().len()
    }

    /// Flush the resident payload tail to the spill file (creating it on
    /// first use; when creation fails the arena silently stays resident).
    #[cold]
    fn flush_spill(&mut self) {
        if self.spill.is_none() {
            match SpillFile::create() {
                Some(f) => self.spill = Some(f),
                None => {
                    self.spill_limit = usize::MAX;
                    return;
                }
            }
        }
        let Some(sp) = self.spill.as_mut() else {
            return;
        };
        let buf = if self.compressed {
            &mut self.enc
        } else {
            &mut self.flat
        };
        let off = sp.spilled as u64;
        match sp.write_all_at(buf, off) {
            Ok(()) => {
                sp.spilled += buf.len();
                buf.clear();
            }
            Err(e) => {
                // Keep the unwritten tail resident, stop spilling, and
                // record the failure for the level-boundary drain.
                self.spill_limit = usize::MAX;
                let _ = self.poison.set(SpillIoError {
                    op: SpillOp::Write,
                    offset: off,
                    source: std::sync::Arc::new(e),
                });
            }
        }
    }

    /// Record a failed spill read observed through a `&self` decode
    /// path (first failure wins; see the `poison` field docs).
    #[cold]
    fn poison_read(&self, offset: u64, e: std::io::Error) {
        let _ = self.poison.set(SpillIoError {
            op: SpillOp::Read,
            offset,
            source: std::sync::Arc::new(e),
        });
    }

    /// `true` once any spill I/O on this arena has failed.
    #[inline]
    fn is_poisoned(&self) -> bool {
        self.poison.get().is_some()
    }

    /// The first spill I/O failure as a build error — the BFS drivers
    /// drain this at level boundaries (and once more after the loop).
    fn take_poison(&self) -> Option<MarkingError> {
        self.poison.get().map(|p| MarkingError::SpillIo(p.clone()))
    }

    /// Read payload bytes `[off, off + out.len())` into `out`, straddling
    /// the spilled prefix and the resident tail as needed.
    fn payload_read_into(&self, off: usize, out: &mut [u8]) {
        let sp = self.spilled();
        let vec = self.payload_vec();
        if off >= sp {
            out.copy_from_slice(&vec[off - sp..off - sp + out.len()]);
            return;
        }
        let file_part = out.len().min(sp - off);
        match self.spill.as_ref() {
            Some(spill) => {
                if let Err(e) = spill.read_exact_at(&mut out[..file_part], off as u64) {
                    self.poison_read(off as u64, e);
                    out[..file_part].fill(0);
                }
            }
            // Unreachable (`spilled() > 0` implies a file); degrade to
            // zero-fill rather than panic under the no-expect policy.
            None => out[..file_part].fill(0),
        }
        if file_part < out.len() {
            let rest = out.len() - file_part;
            out[file_part..].copy_from_slice(&vec[..rest]);
        }
    }

    /// Byte range of compressed entry `s` (exclusive end): `entry_ptr`
    /// bounds it exactly, the last entry running to the payload end.
    #[inline]
    fn enc_entry_range(&self, s: usize) -> (usize, usize) {
        let off = self.entry_ptr[s] as usize;
        let end = self
            .entry_ptr
            .get(s + 1)
            .map_or_else(|| self.payload_len(), |&e| e as usize);
        (off, end)
    }

    /// Bytes of marking `s` in flat mode.
    ///
    /// # Panics
    /// Panics once the arena is compressed or spilled — bulk callers use
    /// [`Self::read_at`]/[`Self::matches`].
    fn get(&self, s: usize) -> &[u8] {
        assert!(
            !self.compressed && self.spilled() == 0,
            "marking arena is delta-compressed or spilled; use read_into/matches"
        );
        &self.flat[s * self.width..(s + 1) * self.width]
    }

    /// Decode marking `s` into `out` (exactly `width` bytes).
    fn copy_to(&self, s: usize, out: &mut [u8]) {
        debug_assert_eq!(out.len(), self.width);
        if self.spilled() > 0 {
            SPILL_SCRATCH.with(|c| {
                let mut scratch = c.borrow_mut();
                self.copy_to_spilled(s, out, &mut scratch.0);
            });
            return;
        }
        if !self.compressed {
            out.copy_from_slice(&self.flat[s * self.width..(s + 1) * self.width]);
            return;
        }
        let (h, mut off) = read_varint(&self.enc, self.entry_ptr[s] as usize);
        if h == 0 {
            out.copy_from_slice(&self.enc[off..off + self.width]);
            return;
        }
        let boff = self.entry_ptr[self.base_of[s] as usize] as usize + 1;
        out.copy_from_slice(&self.enc[boff..boff + self.width]);
        let mut pos = 0usize;
        for _ in 1..h {
            let (gap, next) = read_varint(&self.enc, off);
            pos += gap as usize;
            out[pos] = self.enc[next];
            off = next + 1;
        }
    }

    /// [`Self::copy_to`] when part of the payload lives in the spill
    /// file: entry bytes are materialized through `entry` scratch (the
    /// delta layout bounds every entry, so the read is one `pread` of at
    /// most `1 + width/2` + header bytes; flat entries read exactly
    /// `width`).
    fn copy_to_spilled(&self, s: usize, out: &mut [u8], entry: &mut Vec<u8>) {
        if !self.compressed {
            self.payload_read_into(s * self.width, out);
            return;
        }
        let (off, end) = self.enc_entry_range(s);
        entry.resize(end - off, 0);
        self.payload_read_into(off, entry);
        if self.is_poisoned() {
            // The entry bytes may be zero-filled garbage; emit a
            // deterministic zero marking until the level-boundary drain
            // aborts the build.
            out.fill(0);
            return;
        }
        let (h, mut eo) = read_varint(entry, 0);
        if h == 0 {
            out.copy_from_slice(&entry[eo..eo + self.width]);
            return;
        }
        // Base entries are verbatim: header byte `0`, then `width` bytes.
        let boff = self.entry_ptr[self.base_of[s] as usize] as usize + 1;
        self.payload_read_into(boff, out);
        let mut pos = 0usize;
        for _ in 1..h {
            let (gap, next) = read_varint(entry, eo);
            pos += gap as usize;
            out[pos] = entry[next];
            eo = next + 1;
        }
    }

    /// Marking `s` as a slice: zero-copy while flat and unspilled,
    /// decoded into `buf` otherwise.
    fn read_at<'a>(&'a self, s: usize, buf: &'a mut [u8]) -> &'a [u8] {
        if !self.compressed && self.spilled() == 0 {
            &self.flat[s * self.width..(s + 1) * self.width]
        } else {
            self.copy_to(s, buf);
            buf
        }
    }

    /// Does marking `s` equal `probe`?  Compressed entries compare
    /// without materializing: the base segments between diffs are
    /// compared directly.
    fn matches(&self, s: usize, probe: &[u8]) -> bool {
        debug_assert_eq!(probe.len(), self.width);
        if self.spilled() > 0 {
            return SPILL_SCRATCH.with(|c| {
                let mut scratch = c.borrow_mut();
                let (entry, base) = &mut *scratch;
                self.matches_spilled(s, probe, entry, base)
            });
        }
        if !self.compressed {
            return &self.flat[s * self.width..(s + 1) * self.width] == probe;
        }
        let (h, mut off) = read_varint(&self.enc, self.entry_ptr[s] as usize);
        if h == 0 {
            return &self.enc[off..off + self.width] == probe;
        }
        let boff = self.entry_ptr[self.base_of[s] as usize] as usize + 1;
        let base = &self.enc[boff..boff + self.width];
        let mut pos = 0usize;
        let mut seg = 0usize;
        for _ in 1..h {
            let (gap, next) = read_varint(&self.enc, off);
            pos += gap as usize;
            if probe[seg..pos] != base[seg..pos] || probe[pos] != self.enc[next] {
                return false;
            }
            seg = pos + 1;
            off = next + 1;
        }
        probe[seg..] == base[seg..]
    }

    /// [`Self::matches`] when part of the payload lives in the spill
    /// file — same comparison, entry and base bytes materialized through
    /// the per-thread scratch.
    fn matches_spilled(
        &self,
        s: usize,
        probe: &[u8],
        entry: &mut Vec<u8>,
        base: &mut Vec<u8>,
    ) -> bool {
        if !self.compressed {
            entry.resize(self.width, 0);
            self.payload_read_into(s * self.width, entry);
            return &entry[..] == probe;
        }
        let (off, end) = self.enc_entry_range(s);
        entry.resize(end - off, 0);
        self.payload_read_into(off, entry);
        if self.is_poisoned() {
            // Deterministic miss; the duplicate it may cause is
            // discarded with the rest of the level at the drain.
            return false;
        }
        let (h, mut eo) = read_varint(entry, 0);
        if h == 0 {
            return &entry[eo..eo + self.width] == probe;
        }
        let boff = self.entry_ptr[self.base_of[s] as usize] as usize + 1;
        base.resize(self.width, 0);
        self.payload_read_into(boff, base);
        let mut pos = 0usize;
        let mut seg = 0usize;
        for _ in 1..h {
            let (gap, next) = read_varint(entry, eo);
            pos += gap as usize;
            if probe[seg..pos] != base[seg..pos] || probe[pos] != entry[next] {
                return false;
            }
            seg = pos + 1;
            eo = next + 1;
        }
        probe[seg..] == base[seg..]
    }

    /// Fx hash of marking `s` (`scratch` decodes compressed or spilled
    /// entries).
    fn hash_entry(&self, s: usize, scratch: &mut Vec<u8>) -> u64 {
        if !self.compressed && self.spilled() == 0 {
            hash_marking(&self.flat[s * self.width..(s + 1) * self.width])
        } else {
            scratch.resize(self.width, 0);
            self.copy_to(s, scratch);
            hash_marking(scratch)
        }
    }

    /// Resident payload bytes (either layout, including the compressed
    /// layout's per-entry offset/base bookkeeping; the spilled prefix is
    /// accounted by [`Self::spill_bytes`]).
    fn bytes(&self) -> usize {
        self.flat.len()
            + self.enc.len()
            + self.entry_ptr.len() * std::mem::size_of::<u32>()
            + self.base_of.len() * std::mem::size_of::<u32>()
    }

    /// Payload bytes parked in the spill file.
    fn spill_bytes(&self) -> usize {
        self.spilled()
    }
}

/// All reachable markings, interned in one arena — flat (marking `s`
/// readable in place via [`MarkingStore::get`]) or delta-compressed
/// (see [`ArenaCompression`]; read through
/// [`MarkingStore::read_into`] / [`MarkingStore::matches`]).
#[derive(Debug, Clone)]
pub struct MarkingStore {
    arena: MarkingArena,
}

impl MarkingStore {
    fn from_arena(arena: MarkingArena) -> Self {
        MarkingStore { arena }
    }

    fn from_flat(width: usize, data: Vec<u8>) -> Self {
        MarkingStore {
            arena: MarkingArena::from_flat(width, data),
        }
    }

    /// Number of stored markings.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// `true` when no marking is stored.
    pub fn is_empty(&self) -> bool {
        self.arena.len() == 0
    }

    /// Tokens per place of marking `s`.
    ///
    /// # Panics
    /// Panics when the store is delta-compressed
    /// ([`Self::is_compressed`]) — use [`Self::read_into`] or
    /// [`Self::matches`] there.
    pub fn get(&self, s: usize) -> &[u8] {
        self.arena.get(s)
    }

    /// Tokens per place of marking `s`, decoded into `buf` when the
    /// store is compressed (zero-copy otherwise).
    pub fn read_into<'a>(&'a self, s: usize, buf: &'a mut Vec<u8>) -> &'a [u8] {
        buf.resize(self.arena.width(), 0);
        self.arena.read_at(s, buf)
    }

    /// Does marking `s` equal `probe` (works in either layout)?
    pub fn matches(&self, s: usize, probe: &[u8]) -> bool {
        self.arena.matches(s, probe)
    }

    /// `true` when markings are stored delta-compressed.
    pub fn is_compressed(&self) -> bool {
        self.arena.is_compressed()
    }

    /// Places per marking.
    pub fn width(&self) -> usize {
        self.arena.width()
    }

    /// Resident payload bytes (see [`ArenaStats`]; the spilled prefix is
    /// reported by [`Self::spill_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        self.arena.bytes()
    }

    /// Payload bytes parked in the spill file
    /// ([`MarkingOptions::interner_spill`]); `0` when nothing spilled.
    pub fn spill_bytes(&self) -> usize {
        self.arena.spill_bytes()
    }

    /// All markings in state order.
    ///
    /// # Panics
    /// Panics when the store is delta-compressed — iterate with
    /// [`Self::read_into`] there.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.len()).map(move |s| self.arena.get(s))
    }
}

/// Byte accounting of a build's marking storage, captured when the BFS
/// finishes (arena and table only grow, so this is also the peak).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Canonical-key arena bytes (what the interner dedups against; the
    /// plain BFS's keys *are* its markings).
    pub keys_bytes: usize,
    /// Representative arena bytes (quotient builds; `0` when the keys
    /// double as the stored markings).
    pub reps_bytes: usize,
    /// Interner bytes: open-addressing slots summed over every shard, or
    /// the hash-map estimate on the packed paths.
    pub interner_bytes: usize,
    /// Payload bytes parked in spill files across both arenas
    /// ([`MarkingOptions::interner_spill`]); these are *not* resident,
    /// so they are excluded from [`Self::total`].
    pub spill_bytes: usize,
    /// Whether delta compression was active when the build finished.
    pub compressed: bool,
}

impl ArenaStats {
    /// Total **resident** bytes across both arenas and the interner
    /// (spilled bytes are on disk; add [`Self::spill_bytes`] for the
    /// total stored footprint).
    pub fn total(&self) -> usize {
        self.keys_bytes + self.reps_bytes + self.interner_bytes
    }
}

/// The reachability graph of an [`EventNet`] with exponential races.
#[derive(Debug, Clone)]
pub struct MarkingGraph {
    /// All reachable markings (tokens per place), arena-interned.
    pub states: MarkingStore,
    /// The CTMC over those markings.
    pub ctmc: Ctmc,
    /// CSR layout of the enabled sets: state `s` owns
    /// `enabled_idx[enabled_ptr[s]..enabled_ptr[s+1]]`.
    enabled_ptr: Vec<u32>,
    enabled_idx: Vec<u32>,
    /// Storage accounting captured at the end of the build.
    arena_stats: ArenaStats,
}

/// Fx hash of a marking slice.
#[inline]
fn hash_marking(m: &[u8]) -> u64 {
    let mut h = crate::fxhash::FxHasher::default();
    h.write(m);
    h.finish()
}

/// Open-addressing interner whose keys are offsets into the marking
/// arena — probing compares slices read back from the arena, so no owned
/// key is ever allocated.
struct OffsetInterner {
    /// State id per slot, or `EMPTY`.
    table: Vec<u32>,
    mask: usize,
    len: usize,
}

const EMPTY: u32 = u32::MAX;

impl OffsetInterner {
    fn with_capacity(states: usize) -> Self {
        Self::with_slots((states.max(8) * 2).next_power_of_two())
    }

    /// A table of exactly `slots` slots (rounded up to a power of two).
    fn with_slots(slots: usize) -> Self {
        let cap = slots.max(16).next_power_of_two();
        OffsetInterner {
            table: vec![EMPTY; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Find `probe`'s state id, or intern it as `new_id` (the caller must
    /// then append `probe` to the arena to keep ids in sync).
    #[inline]
    fn intern(&mut self, arena: &MarkingArena, probe: &[u8], new_id: u32) -> (u32, bool) {
        self.intern_hashed(arena, hash_marking(probe), probe, new_id, 0)
    }

    /// [`Self::intern`] with the hash supplied by the caller (the sharded
    /// interner hashes once to pick the shard).  `budget_slots` is the
    /// first-growth jump target: a full table grows to
    /// `max(2·slots, budget_slots)`, so a budget-presized shard pays at
    /// most one cheap early rehash instead of a doubling storm (`0`
    /// keeps plain doubling — the legacy growth schedule).
    #[inline]
    fn intern_hashed(
        &mut self,
        arena: &MarkingArena,
        h: u64,
        probe: &[u8],
        new_id: u32,
        budget_slots: usize,
    ) -> (u32, bool) {
        if (self.len + 1) * 8 > self.table.len() * 7 {
            self.grow(arena, (self.table.len() * 2).max(budget_slots));
        }
        let mut slot = h as usize & self.mask;
        loop {
            let id = self.table[slot];
            if id == EMPTY {
                self.table[slot] = new_id;
                self.len += 1;
                return (new_id, true);
            }
            if arena.matches(id as usize, probe) {
                return (id, false);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Read-only probe with the hash supplied by the caller: `probe`'s
    /// state id if it is interned, else `None`.  This is the
    /// **level-frozen** lookup of the parallel BFS workers — the table is
    /// shared immutably across threads while a level is being explored,
    /// so states discovered *within* the level miss here and are
    /// deduplicated chunk-locally instead.
    #[inline]
    fn find_hashed(&self, arena: &MarkingArena, h: u64, probe: &[u8]) -> Option<u32> {
        let mut slot = h as usize & self.mask;
        loop {
            let id = self.table[slot];
            if id == EMPTY {
                return None;
            }
            if arena.matches(id as usize, probe) {
                return Some(id);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    #[cold]
    fn grow(&mut self, arena: &MarkingArena, target_slots: usize) {
        let cap = target_slots.max(self.table.len() * 2).next_power_of_two();
        let mut table = vec![EMPTY; cap];
        let mask = cap - 1;
        let mut scratch = Vec::new();
        for &id in self.table.iter().filter(|&&id| id != EMPTY) {
            let mut slot = arena.hash_entry(id as usize, &mut scratch) as usize & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = id;
        }
        self.table = table;
        self.mask = mask;
    }

    /// Bytes of the open-addressing slot table.
    fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
    }
}

/// Two-level interner of the arena BFS paths: `2^k` [`OffsetInterner`]
/// shards keyed by the **top** `k` bits of the marking hash (slot
/// probing uses the low bits, so the two levels are independent).
///
/// Sharding reorganizes only the hash table: ids are still assigned by
/// the caller in sequential scan/merge order and deduplication is exact
/// byte equality, so the chain is **bitwise identical for any shard
/// count** — the same contract the chunk-parallel BFS honors.  What
/// sharding buys at 10M+ states is allocation granularity: each shard's
/// table grows (and rehashes) independently at ~1/2^k the size, and the
/// first growth of a shard jumps straight to its slice of the
/// `max_states` budget (`budget_slots`) — at most one cheap early rehash
/// per shard instead of the ~13 full-table doubling rehashes a 6×7 build
/// paid under the old fixed 1024-slot start.
struct ShardedInterner {
    shards: Vec<OffsetInterner>,
    /// `hash >> shard_shift` picks the shard; `64` means a single shard.
    shard_shift: u32,
    /// Per-shard first-growth target: slots holding `max_states / 2^k`
    /// entries below the 7/8 load bound (`0` = plain doubling).
    budget_slots: usize,
}

impl ShardedInterner {
    /// `n_shards` tables (rounded to a power of two) presized for a
    /// `max_states` interning budget.  Shards start at ≤ 2048 slots so
    /// the many small pattern-chain builds of the engine never pay a
    /// budget-sized allocation; builds that do scale pay one early
    /// rehash per shard when they jump to `budget_slots`.
    fn new(n_shards: usize, max_states: usize) -> Self {
        let n = n_shards.clamp(1, MAX_INTERNER_SHARDS).next_power_of_two();
        let budget_slots = if max_states == 0 {
            0
        } else {
            (max_states / n * 8 / 7 + 1).next_power_of_two()
        };
        let init = budget_slots.clamp(16, 2048);
        ShardedInterner {
            shards: (0..n).map(|_| OffsetInterner::with_slots(init)).collect(),
            shard_shift: 64 - n.trailing_zeros(),
            budget_slots,
        }
    }

    /// The [`MarkingOptions`]-resolved interner of the big build paths.
    fn for_opts(opts: &MarkingOptions) -> Self {
        Self::new(opts.resolved_interner_shards(), opts.max_states)
    }

    #[inline]
    fn shard_of(&self, h: u64) -> usize {
        if self.shard_shift >= 64 {
            0
        } else {
            (h >> self.shard_shift) as usize
        }
    }

    /// Find `probe`'s state id, or intern it as `new_id` (see
    /// [`OffsetInterner::intern`]).
    #[inline]
    fn intern(&mut self, arena: &MarkingArena, probe: &[u8], new_id: u32) -> (u32, bool) {
        let h = hash_marking(probe);
        let budget = self.budget_slots;
        let shard = self.shard_of(h);
        self.shards[shard].intern_hashed(arena, h, probe, new_id, budget)
    }

    /// Level-frozen read-only probe (see [`OffsetInterner::find`]).
    #[inline]
    fn find(&self, arena: &MarkingArena, probe: &[u8]) -> Option<u32> {
        let h = hash_marking(probe);
        self.shards[self.shard_of(h)].find_hashed(arena, h, probe)
    }

    /// Bytes of the slot tables summed over every shard.
    fn table_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.table_bytes()).sum()
    }
}

/// Coded-target flag of the parallel staging: targets carrying this bit
/// index a chunk-local new-key list instead of naming a global state id
/// (ids therefore live in 31 bits — `max_states` is clamped below it).
const NEW_BIT: u32 = 1 << 31;

/// Resolved default of [`MarkingOptions::min_states_per_worker`]: read
/// once from `REPSTREAM_BFS_MIN_STATES_PER_WORKER`, else 256 (spawning a
/// scope thread costs tens of microseconds; a smaller slice of BFS work
/// cannot amortize it).
fn default_min_states_per_worker() -> usize {
    static GATE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *GATE.get_or_init(|| {
        std::env::var("REPSTREAM_BFS_MIN_STATES_PER_WORKER")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(256)
    })
}

/// Worker count for a BFS level with `pending` unexplored states: an
/// explicit request is honored (clamped to one state per worker), `0`
/// auto-sizes to the core count ([`crate::ctmc::num_cores`], shared with
/// the power sweep) gated by `min_per_worker`
/// ([`MarkingOptions::min_states_per_worker`]; `0` defers to
/// [`default_min_states_per_worker`]).  Explicit thread requests skip
/// the gate — output is bitwise identical either way.
fn bfs_threads(requested: usize, pending: usize, min_per_worker: usize) -> usize {
    let gate = if min_per_worker == 0 {
        default_min_states_per_worker()
    } else {
        min_per_worker
    };
    match requested {
        0 => crate::ctmc::num_cores().min(pending / gate).max(1),
        t => t.min(pending).max(1),
    }
}

/// Staged exploration of one chunk of a parallel BFS level (see the
/// module docs): every firing is recorded with its target either resolved
/// against the level-frozen interner or deduplicated into the chunk-local
/// new-key list, for the sequential merge to replay in chunk order.
struct ChunkStage {
    /// `(transition, coded target)` per firing, in scan order; targets
    /// carrying [`NEW_BIT`] index the new-key list.
    firings: Vec<(u32, u32)>,
    /// Exclusive end in `firings` of each explored state's row.
    row_ends: Vec<u32>,
    /// Chunk-local unique canonical keys, in first-appearance order (a
    /// flat arena — its lifetime is one level, so it never compresses).
    new_keys: MarkingArena,
    /// First-discovered representative per new key (quotient chunks; the
    /// plain BFS leaves it empty — its keys *are* the markings).
    new_reps: Vec<u8>,
    /// Orbit period per new key (quotient chunks only).
    new_periods: Vec<u32>,
    /// Error that cut the scan short (the last staged row is then
    /// partial and the merge re-raises the error at that point).
    error: Option<MarkingError>,
}

impl ChunkStage {
    fn new(width: usize) -> Self {
        ChunkStage {
            firings: Vec::new(),
            row_ends: Vec::new(),
            new_keys: MarkingArena::new(width, ArenaCompression::Off),
            new_reps: Vec::new(),
            new_periods: Vec::new(),
            error: None,
        }
    }
}

/// Lexicographic-minimum rotation of the successor held in `rot`
/// (rotation `a` lives at `rot[a·width..][..width]`), returning
/// `(best rotation index, orbit period)`.  The scan stops at the
/// successor's period — later rotations repeat — which is also the orbit
/// size.  Shared by the sequential rotation-buffer scan and its parallel
/// workers so both elect the identical representative.
#[inline]
fn lex_min_rotation(rot: &[u8], width: usize, order: usize) -> (usize, u32) {
    let mut best = 0usize;
    let mut period = order as u32;
    for a in 1..order {
        let c = &rot[a * width..(a + 1) * width];
        if c == &rot[..width] {
            period = a as u32;
            break;
        }
        if c < &rot[best * width..(best + 1) * width] {
            best = a;
        }
    }
    (best, period)
}

/// Per-transition firing masks of the packed-u64 fast path: place `p`
/// lives in byte `p` of the word.
struct PackedNet {
    /// +1 in each output-place byte.
    add: Vec<u64>,
    /// +1 in each input-place byte.
    sub: Vec<u64>,
    /// 0x01 in each input-place byte (zero-byte probe, low half).
    in_low: Vec<u64>,
    /// 0x80 in each input-place byte (zero-byte probe, high half).
    in_high: Vec<u64>,
}

impl PackedNet {
    fn build(net: &EventNet) -> Self {
        let nt = net.n_transitions();
        let mut p = PackedNet {
            add: vec![0; nt],
            sub: vec![0; nt],
            in_low: vec![0; nt],
            in_high: vec![0; nt],
        };
        for t in 0..nt {
            for &pl in net.inputs(t) {
                p.sub[t] += 1u64 << (8 * pl);
                p.in_low[t] |= 0x01u64 << (8 * pl);
                p.in_high[t] |= 0x80u64 << (8 * pl);
            }
            for &pl in net.outputs(t) {
                p.add[t] += 1u64 << (8 * pl);
            }
        }
        p
    }

    /// All input bytes of `marking` non-zero?  Branch-free zero-byte
    /// probe restricted to the input places: a borrow can only originate
    /// in a zero input byte, so `probe != 0 ⇔ some input place is empty`.
    #[inline]
    fn enabled(&self, t: usize, marking: u64) -> bool {
        marking.wrapping_sub(self.in_low[t]) & !marking & self.in_high[t] == 0
    }

    /// Fire `t` (caller has checked enabledness and capacity, so no byte
    /// borrows or carries).
    #[inline]
    fn fire(&self, t: usize, marking: u64) -> u64 {
        marking.wrapping_sub(self.sub[t]).wrapping_add(self.add[t])
    }
}

/// Shared accumulator of the BFS outputs (chain rows + enabled CSR).
struct GraphBuilder {
    csr: CsrBuilder,
    enabled_ptr: Vec<u32>,
    enabled_idx: Vec<u32>,
    fired_in_row: bool,
}

impl GraphBuilder {
    fn new(expected_states: usize, nt: usize) -> Self {
        GraphBuilder {
            csr: CsrBuilder::with_capacity(expected_states, expected_states * nt / 2),
            enabled_ptr: vec![0],
            enabled_idx: Vec::new(),
            fired_in_row: false,
        }
    }

    #[inline]
    fn push(&mut self, t: usize, target: usize, rate: f64) {
        self.csr.push(target, rate);
        self.enabled_idx.push(t as u32);
        self.fired_in_row = true;
    }

    /// Close state `s`'s row; `Err(Deadlock)` when nothing was enabled.
    #[inline]
    fn end_row(&mut self) -> Result<(), MarkingError> {
        if !self.fired_in_row {
            return Err(MarkingError::Deadlock);
        }
        self.fired_in_row = false;
        self.csr.end_row();
        self.enabled_ptr.push(self.enabled_idx.len() as u32);
        Ok(())
    }
}

impl MarkingGraph {
    /// Explore the reachable markings of `net`.
    pub fn build(net: &EventNet, opts: MarkingOptions) -> Result<Self, MarkingError> {
        // State ids are u32 in the interner and the CSR, and the parallel
        // staging codes them in 31 bits (the top bit flags chunk-local
        // keys); clamp the budget so the id-space bound fires as
        // `TooManyStates` before any id could wrap.
        let opts = MarkingOptions {
            max_states: opts.max_states.min(NEW_BIT as usize - 1),
            ..opts
        };
        let cap = opts.capacity.unwrap_or(1).max(1);
        // The packed path stores a place in one byte, so token counts must
        // fit: the capacity bound (or safeness bound 1) keeps them ≤ 255.
        if net.n_places() <= 8 && cap <= 255 {
            Self::build_packed(net, opts, cap as u8)
        } else {
            Self::build_arena(net, opts, cap as i64)
        }
    }

    /// Generic path: arena-interned byte markings, reused scratch buffer.
    /// Levels large enough for [`MarkingOptions::threads`] are scanned by
    /// the chunk-parallel workers (see the module docs); either way the
    /// output is bitwise identical.
    fn build_arena(net: &EventNet, opts: MarkingOptions, cap: i64) -> Result<Self, MarkingError> {
        let width = net.n_places();
        let nt = net.n_transitions();
        let strict_safe = opts.capacity.is_none();

        let init = net.initial_marking();
        assert_eq!(init.len(), width);
        let mut arena =
            MarkingArena::with_spill(width, opts.arena_compression, opts.resolved_spill_limit());
        arena.push(&init);
        let mut interner = ShardedInterner::for_opts(&opts);
        let (id0, fresh) = interner.intern(&arena, &init, 0);
        debug_assert!(fresh && id0 == 0);

        let mut out = GraphBuilder::new(1024, nt);
        let mut cur = vec![0u8; width];
        let mut scratch = vec![0u8; width];
        let mut frontier = 0usize;
        let mut n_states = 1usize;
        // Exclusive end of the BFS level being explored: crossing it
        // starts the next level (and a fresh delta base in the arena).
        let mut level_end = 0usize;
        let mut levels = 0usize;

        while frontier < n_states {
            if frontier >= level_end {
                // Level boundary: drain any spill I/O failure, then one
                // cooperative governor check (never on the per-firing
                // hot path, so checks cannot perturb output bits).
                if let Some(e) = arena.take_poison() {
                    return Err(e);
                }
                opts.budget.check(Progress {
                    phase: Phase::MarkingBfs,
                    states: n_states,
                    levels,
                    iterations: 0,
                    arena_bytes: arena.bytes() + interner.table_bytes(),
                })?;
                levels += 1;
                level_end = n_states;
                arena.begin_level();
            }
            let threads = bfs_threads(
                opts.threads,
                n_states - frontier,
                opts.min_states_per_worker,
            );
            if threads > 1 {
                // Parallel level: freeze the interner/arena over the
                // pending range, stage one chunk per worker, merge in
                // chunk order.
                let hi = n_states;
                let chunk = (hi - frontier).div_ceil(threads);
                let stages: Vec<ChunkStage> = std::thread::scope(|scope| {
                    let (interner, arena) = (&interner, &arena);
                    let handles: Vec<_> = (frontier..hi)
                        .step_by(chunk)
                        .map(|lo| {
                            scope.spawn(move || {
                                Self::explore_plain_chunk(
                                    net,
                                    strict_safe,
                                    cap,
                                    arena,
                                    interner,
                                    width,
                                    lo..(lo + chunk).min(hi),
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(stage) => stage,
                            Err(p) => std::panic::resume_unwind(p),
                        })
                        .collect()
                });
                for stage in &stages {
                    // Chunk-boundary checkpoint: bounds the coast past a
                    // deadline to one chunk's replay on parallel levels.
                    opts.budget.check(Progress {
                        phase: Phase::MarkingBfs,
                        states: n_states,
                        levels,
                        iterations: 0,
                        arena_bytes: arena.bytes() + interner.table_bytes(),
                    })?;
                    Self::merge_plain_chunk(
                        net,
                        stage,
                        &mut interner,
                        &mut arena,
                        &mut n_states,
                        opts.max_states,
                        &mut out,
                    )?;
                }
                frontier = hi;
                continue;
            }

            let s = frontier;
            frontier += 1;
            // Mid-level checkpoint: big levels (millions of states) take
            // seconds, so the per-level cadence alone cannot honor a
            // deadline-plus-grace contract.  Strided so the hot path
            // stays one branch per state.
            if s & 0xfff == 0xfff {
                if let Some(e) = arena.take_poison() {
                    return Err(e);
                }
                opts.budget.check(Progress {
                    phase: Phase::MarkingBfs,
                    states: n_states,
                    levels,
                    iterations: 0,
                    arena_bytes: arena.bytes() + interner.table_bytes(),
                })?;
            }
            arena.copy_to(s, &mut cur);

            'trans: for t in 0..nt {
                // Enabled: all inputs marked…
                for &p in net.inputs(t) {
                    if cur[p] == 0 {
                        continue 'trans;
                    }
                }
                // …and, under a capacity bound, all outputs below cap.
                // Self-loop places (input and output of t) net out to
                // zero, so they never block.  Without a capacity, the
                // firing is attempted and unsafety is reported as an
                // error instead.
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && i64::from(cur[p]) >= cap {
                            continue 'trans;
                        }
                    }
                }
                // Successor marking, into the reused scratch buffer.
                scratch.copy_from_slice(&cur);
                for &p in net.inputs(t) {
                    scratch[p] -= 1;
                }
                for &p in net.outputs(t) {
                    scratch[p] += 1;
                    if strict_safe && scratch[p] > 1 {
                        return Err(MarkingError::NotSafe { place: p });
                    }
                }
                let (id, is_new) = interner.intern(&arena, &scratch, n_states as u32);
                if is_new {
                    if n_states >= opts.max_states {
                        // A poisoned spill read zero-fills its marking, which
                        // can cascade into bogus dedup misses or dead rows —
                        // the root cause must win over the symptom.
                        return Err(arena
                            .take_poison()
                            .unwrap_or(MarkingError::TooManyStates(opts.max_states)));
                    }
                    arena.push(&scratch);
                    n_states += 1;
                }
                out.push(t, id as usize, net.rates[t]);
            }
            out.end_row()
                .map_err(|e| arena.take_poison().unwrap_or(e))?;
        }

        // The last level has no following boundary: drain once more so
        // a spill failure there still surfaces.
        if let Some(e) = arena.take_poison() {
            return Err(e);
        }
        let arena_stats = ArenaStats {
            keys_bytes: arena.bytes(),
            reps_bytes: 0,
            interner_bytes: interner.table_bytes(),
            spill_bytes: arena.spill_bytes(),
            compressed: arena.is_compressed(),
        };
        Ok(MarkingGraph {
            states: MarkingStore::from_arena(arena),
            ctmc: out.csr.finish(),
            enabled_ptr: out.enabled_ptr,
            enabled_idx: out.enabled_idx,
            arena_stats,
        })
    }

    /// Worker of the parallel plain BFS: scan the rows of `states` (a
    /// chunk of one level) exactly like the sequential loop, staging each
    /// firing with its target resolved against the level-frozen interner
    /// or deduplicated chunk-locally.
    fn explore_plain_chunk(
        net: &EventNet,
        strict_safe: bool,
        cap: i64,
        arena: &MarkingArena,
        interner: &ShardedInterner,
        width: usize,
        states: std::ops::Range<usize>,
    ) -> ChunkStage {
        let nt = net.n_transitions();
        let mut stage = ChunkStage::new(width);
        let mut local = OffsetInterner::with_capacity(64);
        let mut n_local = 0u32;
        let mut scratch = vec![0u8; width];
        let mut curbuf = vec![0u8; width];
        for s in states {
            let cur = arena.read_at(s, &mut curbuf);
            'trans: for t in 0..nt {
                for &p in net.inputs(t) {
                    if cur[p] == 0 {
                        continue 'trans;
                    }
                }
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && i64::from(cur[p]) >= cap {
                            continue 'trans;
                        }
                    }
                }
                scratch.copy_from_slice(cur);
                for &p in net.inputs(t) {
                    scratch[p] -= 1;
                }
                for &p in net.outputs(t) {
                    scratch[p] += 1;
                    if strict_safe && scratch[p] > 1 {
                        stage.error = Some(MarkingError::NotSafe { place: p });
                        stage.row_ends.push(stage.firings.len() as u32);
                        return stage;
                    }
                }
                let code = match interner.find(arena, &scratch) {
                    Some(id) => id,
                    None => {
                        let (li, fresh) = local.intern(&stage.new_keys, &scratch, n_local);
                        if fresh {
                            stage.new_keys.push(&scratch);
                            n_local += 1;
                        }
                        NEW_BIT | li
                    }
                };
                stage.firings.push((t as u32, code));
            }
            stage.row_ends.push(stage.firings.len() as u32);
        }
        stage
    }

    /// Merge one staged chunk into the build in chunk order: replay the
    /// firings sequentially, interning each chunk-local key at its first
    /// use — the same intern sequence, row order and error points as the
    /// sequential scan, hence bitwise-identical output.
    #[allow(clippy::too_many_arguments)]
    fn merge_plain_chunk(
        net: &EventNet,
        stage: &ChunkStage,
        interner: &mut ShardedInterner,
        arena: &mut MarkingArena,
        n_states: &mut usize,
        max_states: usize,
        out: &mut GraphBuilder,
    ) -> Result<(), MarkingError> {
        let n_local = stage.new_keys.len();
        let mut local_ids = vec![EMPTY; n_local];
        let mut f = 0usize;
        for (row, &end) in stage.row_ends.iter().enumerate() {
            for &(t, code) in &stage.firings[f..end as usize] {
                let id = if code & NEW_BIT == 0 {
                    code
                } else {
                    let li = (code & !NEW_BIT) as usize;
                    if local_ids[li] == EMPTY {
                        let key = stage.new_keys.get(li);
                        let (id, is_new) = interner.intern(arena, key, *n_states as u32);
                        if is_new {
                            if *n_states >= max_states {
                                return Err(arena
                                    .take_poison()
                                    .unwrap_or(MarkingError::TooManyStates(max_states)));
                            }
                            arena.push(key);
                            *n_states += 1;
                        }
                        local_ids[li] = id;
                    }
                    local_ids[li]
                };
                out.push(t as usize, id as usize, net.rates[t as usize]);
            }
            f = end as usize;
            if row + 1 == stage.row_ends.len() {
                if let Some(e) = &stage.error {
                    return Err(e.clone());
                }
            }
            out.end_row()
                .map_err(|e| arena.take_poison().unwrap_or(e))?;
        }
        Ok(())
    }

    /// Packed path for ≤ 8 places: markings are single `u64` words.
    fn build_packed(net: &EventNet, opts: MarkingOptions, cap: u8) -> Result<Self, MarkingError> {
        let width = net.n_places();
        let nt = net.n_transitions();
        let strict_safe = opts.capacity.is_none();
        let packed = PackedNet::build(net);

        let init = pack(&net.initial_marking());
        let mut states: Vec<u64> = vec![init];
        let mut index: FxHashMap<u64, u32> = FxHashMap::default();
        index.insert(init, 0);

        let mut out = GraphBuilder::new(1024, nt);
        let mut frontier = 0usize;

        while frontier < states.len() {
            // The packed word path has no level structure; check the
            // budget every 4096 states instead (same contract: the
            // check only decides whether to abort).
            if frontier & 0xfff == 0 {
                opts.budget.check(Progress {
                    phase: Phase::MarkingBfs,
                    states: states.len(),
                    levels: 0,
                    iterations: frontier,
                    arena_bytes: states.len() * std::mem::size_of::<u64>(),
                })?;
            }
            let cur = states[frontier];
            frontier += 1;

            'trans: for t in 0..nt {
                if !packed.enabled(t, cur) {
                    continue;
                }
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && byte(cur, p) >= cap {
                            continue 'trans;
                        }
                    }
                }
                let next = packed.fire(t, cur);
                if strict_safe {
                    for &p in net.outputs(t) {
                        if byte(next, p) > 1 {
                            return Err(MarkingError::NotSafe { place: p });
                        }
                    }
                }
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = states.len() as u32;
                        if id as usize >= opts.max_states {
                            return Err(MarkingError::TooManyStates(opts.max_states));
                        }
                        states.push(next);
                        index.insert(next, id);
                        id
                    }
                };
                out.push(t, id as usize, net.rates[t]);
            }
            out.end_row()?;
        }

        // Materialize the arena from the packed words.
        let mut data = Vec::with_capacity(states.len() * width);
        for &w in &states {
            data.extend_from_slice(&w.to_le_bytes()[..width]);
        }
        let arena_stats = ArenaStats {
            keys_bytes: states.len() * std::mem::size_of::<u64>(),
            reps_bytes: 0,
            interner_bytes: index.capacity()
                * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>()),
            spill_bytes: 0,
            compressed: false,
        };
        Ok(MarkingGraph {
            states: MarkingStore::from_flat(width, data),
            ctmc: out.csr.finish(),
            enabled_ptr: out.enabled_ptr,
            enabled_idx: out.enabled_idx,
            arena_stats,
        })
    }

    /// Number of reachable markings.
    pub fn n_states(&self) -> usize {
        self.ctmc.n_states()
    }

    /// Transitions fireable in state `s` (ascending).
    pub fn enabled(&self, s: usize) -> &[u32] {
        &self.enabled_idx[self.enabled_ptr[s] as usize..self.enabled_ptr[s + 1] as usize]
    }

    /// Byte accounting of the build's marking storage (the peak — arena
    /// and interner only grow during the BFS).
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena_stats
    }

    /// Orbit seed partition of the reachable markings under a net
    /// symmetry: state `s` maps to the state holding the place-permuted
    /// marking, and the cycles of that state permutation become blocks.
    ///
    /// The caller should have validated `sym` with
    /// [`EventNet::symmetry_valid`]; this method adds the *reachability*
    /// check the net-level validation cannot do: a net automorphism that
    /// does not fix the initial marking still induces a CTMC automorphism
    /// **iff** the permuted markings are all reachable (the reachability
    /// graph of these live event nets is strongly connected, so one
    /// escaped image means the hint does not apply).  Returns `None` in
    /// that case — callers fall back to the full chain.
    ///
    /// The resulting partition satisfies the automorphism-orbit contract
    /// of [`crate::lump`], so
    /// [`Ctmc::stationary_lumped`](crate::ctmc::Ctmc::stationary_lumped)
    /// may lift per-state marginals from it.
    pub fn orbit_partition(&self, sym: &NetSymmetry) -> Option<Partition> {
        let n = self.n_states();
        let width = self.states.width();
        if sym.place_perm.len() != width {
            return None;
        }
        // The induced state map σ is propagated *structurally* instead of
        // hashing every permuted marking: once σ(s₀) is known, firing
        // transition `t` from `s` corresponds to firing `trans_perm[t]`
        // from σ(s) (that is what being a net automorphism means), and the
        // marking BFS reaches every state from s₀ — so one marking lookup
        // seeds a pure-integer BFS over the aligned `enabled`/CSR rows.
        // Every propagation step doubles as a validity check: a missing
        // permuted transition, a σ conflict, or a non-injective image
        // proves the hint does not apply and returns `None`.
        let image0: Option<Vec<u8>> = {
            let mut buf = Vec::new();
            let m0 = self.states.read_into(0, &mut buf);
            let mut img = vec![0u8; width];
            let mut ok = true;
            for (p, &tokens) in m0.iter().enumerate() {
                let dst = sym.place_perm[p];
                if dst >= width {
                    ok = false;
                    break;
                }
                img[dst] = tokens;
            }
            ok.then_some(img)
        };
        let image0 = image0?;
        let s0_img = (0..n).find(|&s| self.states.matches(s, &image0))? as u32;

        let mut sigma = vec![u32::MAX; n];
        let mut taken = vec![false; n];
        sigma[0] = s0_img;
        taken[s0_img as usize] = true;
        let mut stack: Vec<u32> = vec![0];
        let mut visited = 1usize;
        while let Some(s) = stack.pop() {
            let s = s as usize;
            let si = sigma[s] as usize;
            let en_s = self.enabled(s);
            let en_si = self.enabled(si);
            if en_s.len() != en_si.len() {
                return None;
            }
            let row_s = self.ctmc.row_targets(s);
            let row_si = self.ctmc.row_targets(si);
            for (k, &t) in en_s.iter().enumerate() {
                let tp = *sym.trans_perm.get(t as usize)? as u32;
                // Enabled sets are ascending by construction.
                let pos = en_si.binary_search(&tp).ok()?;
                let target = row_s[k] as usize;
                let target_img = row_si[pos];
                if sigma[target] == u32::MAX {
                    if taken[target_img as usize] {
                        return None; // not injective: bogus hint
                    }
                    sigma[target] = target_img;
                    taken[target_img as usize] = true;
                    visited += 1;
                    stack.push(target as u32);
                } else if sigma[target] != target_img {
                    return None; // inconsistent propagation: bogus hint
                }
            }
        }
        if visited != n {
            return None;
        }
        Some(Partition::from_permutation_orbits(&sigma))
    }

    /// Transition fired by each CSR edge of the chain, in edge order (the
    /// enabled-set arrays double as this map: the BFS appends one enabled
    /// transition per chain edge, so `edge_transitions().len() ==
    /// ctmc.nnz()` and edge `e` was produced by firing transition
    /// `edge_transitions()[e]`).
    ///
    /// This is what makes the reachability structure reusable across rate
    /// tables: the chain of a *different* rate assignment over the same
    /// net structure is `ctmc.with_rates(edge rates looked up here)` — see
    /// [`MarkingGraph::ctmc_with_trans_rates`].
    pub fn edge_transitions(&self) -> &[u32] {
        &self.enabled_idx
    }

    /// The chain re-rated from per-transition rates: edge `e` gets
    /// `trans_rates[edge_transitions()[e]]`.  Bitwise identical to
    /// rebuilding the marking graph of a net with those rates (the BFS
    /// order depends only on structure), at `O(nnz)` instead of a full
    /// BFS + interning pass.
    ///
    /// # Panics
    /// Panics if `trans_rates` is shorter than the net's transition count
    /// or contains a non-positive rate.
    pub fn ctmc_with_trans_rates(&self, trans_rates: &[f64]) -> Ctmc {
        let rate: Vec<f64> = self
            .enabled_idx
            .iter()
            .map(|&t| trans_rates[t as usize])
            .collect();
        self.ctmc.with_rates(rate)
    }

    /// Stationary firing rate of every transition:
    /// `rate(t) = Σ_s π(s) λ_t [t enabled in s]`.
    pub fn firing_rates(&self, net: &EventNet, pi: &[f64]) -> Vec<f64> {
        self.firing_rates_with(&net.rates, pi)
    }

    /// As [`MarkingGraph::firing_rates`], from a bare per-transition rate
    /// slice (the re-rated chains of [`MarkingGraph::ctmc_with_trans_rates`]
    /// have no `EventNet` to hand).
    pub fn firing_rates_with(&self, trans_rates: &[f64], pi: &[f64]) -> Vec<f64> {
        assert_eq!(pi.len(), self.n_states());
        let mut rates = vec![0.0f64; trans_rates.len()];
        for (s, &p) in pi.iter().enumerate() {
            for &t in self.enabled(s) {
                rates[t as usize] += p * trans_rates[t as usize];
            }
        }
        rates
    }

    /// Convenience: stationary distribution, then summed firing rate of a
    /// set of transitions (e.g. the TPN's last column → throughput).
    pub fn throughput_of(&self, net: &EventNet, transitions: &[usize]) -> f64 {
        self.throughput_with(&self.ctmc, &net.rates, transitions)
    }

    /// As [`MarkingGraph::throughput_of`] for a re-rated chain sharing
    /// this graph's structure (same op order as the owned-chain path, so
    /// refilled and cold solves agree bit for bit).
    pub fn throughput_with(&self, ctmc: &Ctmc, trans_rates: &[f64], transitions: &[usize]) -> f64 {
        self.throughput_solve(ctmc, trans_rates, transitions, SolverChoice::Auto)
            .0
    }

    /// As [`MarkingGraph::throughput_with`], solving the chain with an
    /// explicit [`SolverChoice`] and returning the [`SolveReport`] (which
    /// solver ran, its residual and iteration count) alongside the
    /// throughput.  [`SolverChoice::Auto`] reproduces
    /// [`MarkingGraph::throughput_with`] bit for bit.
    pub fn throughput_solve(
        &self,
        ctmc: &Ctmc,
        trans_rates: &[f64],
        transitions: &[usize],
        choice: SolverChoice,
    ) -> (f64, SolveReport) {
        let report = ctmc.stationary_solve(choice);
        let rates = self.firing_rates_with(trans_rates, &report.pi);
        (transitions.iter().map(|&t| rates[t]).sum(), report)
    }

    /// [`MarkingGraph::throughput_solve`] under a cooperative [`Budget`]:
    /// the stationary solve checks the budget at its checkpoints and
    /// surfaces an overrun as an [`Interrupt`].  Bitwise identical to the
    /// ungoverned path when no limit fires.
    pub fn throughput_solve_governed(
        &self,
        ctmc: &Ctmc,
        trans_rates: &[f64],
        transitions: &[usize],
        choice: SolverChoice,
        budget: &Budget,
    ) -> Result<(f64, SolveReport), Interrupt> {
        let report = ctmc.stationary_solve_governed(choice, budget)?;
        let rates = self.firing_rates_with(trans_rates, &report.pi);
        Ok((transitions.iter().map(|&t| rates[t]).sum(), report))
    }
}

/// The symmetry-reduced reachability graph of an [`EventNet`]: one state
/// per orbit of the reachable markings under a rate-preserving
/// automorphism, built **without materializing the full graph**.
///
/// # Why this equals full-then-lump bit for bit
///
/// The BFS interns every successor marking by its **canonical form** (the
/// lexicographically smallest member of its orbit) but stores the
/// **first-discovered** member as the orbit's representative, and it is
/// that representative's row that is explored.  Three facts make the
/// output coincide exactly with
/// [`Ctmc::quotient`]`(`[`MarkingGraph::orbit_partition`]`)`:
///
/// 1. **Numbering.** In the full BFS, a non-first member `σᵃ(x)` of an
///    orbit can never discover an orbit its first member `x` did not: its
///    row is the `σᵃ`-image of `x`'s row, hitting the same orbits, and
///    `x` is processed first.  So new orbits are first discovered only
///    from first members, in ascending transition order of their rows —
///    exactly the order this BFS visits (its representative *is* that
///    first member, by induction along the discovery sequence).  Orbit
///    ids here therefore equal the block ids of
///    [`MarkingGraph::orbit_partition`] (first appearance by full state
///    index).
/// 2. **Rates.** [`Ctmc::quotient`] reads each block's row off its first
///    member (every member agrees — that is lumpability), accumulating
///    edge rates per target block in CSR row order, which for the full
///    BFS is ascending enabled-transition order — the same scan order and
///    the same `f64` additions performed here.
/// 3. **Edges.** Both emit a block's targets in first-hit order of that
///    scan and drop intra-orbit edges (the quotient's self-loops).
///
/// # What the quotient preserves
///
/// Per-state quantities are only available per orbit: [`Self::enabled`]
/// lists the enabled transitions of the *representative*, and
/// [`Self::firing_rates_with`] returns orbit-aggregated totals — sums
/// over a transition set are the true full-chain sums **iff the set is
/// closed under the automorphism** (e.g. a whole TPN column, like the
/// last-column throughput set: the rotation permutes rows within a
/// column).  Uniform per-state probabilities come from [`Self::lift`].
#[derive(Debug, Clone)]
pub struct QuotientGraph {
    /// First-discovered member marking of every orbit (the block's
    /// representative, whose enabled set [`Self::enabled`] reports).
    pub reps: MarkingStore,
    /// The quotient CTMC: orbit-aggregated rates, intra-orbit edges
    /// dropped.
    pub ctmc: Ctmc,
    /// CSR layout of the representatives' enabled sets.
    enabled_ptr: Vec<u32>,
    enabled_idx: Vec<u32>,
    /// Quotient edge `e` aggregates the representative-row transitions
    /// `edge_trans[edge_ptr[e]..edge_ptr[e+1]]` (ascending within each
    /// edge) — the refill map of [`Self::ctmc_with_trans_rates`].
    edge_ptr: Vec<u32>,
    edge_trans: Vec<u32>,
    /// Orbit size (number of distinct markings) per quotient state.
    orbit_size: Vec<u32>,
    /// Storage accounting captured at the end of the build.
    arena_stats: ArenaStats,
}

/// Rotation-buffer budget of the optimized quotient path (bytes): above
/// this, `order · n_places` no longer fits a sane working set and the
/// per-firing canonicalization fallback runs instead (state budgets rule
/// such shapes out anyway — this guard only prevents a large up-front
/// allocation before the budget can fire).
const ROT_BUFFER_CAP: usize = 1 << 26;

/// Row-by-row accumulator of the quotient BFS outputs: aggregated CSR
/// rows, enabled sets, the edge→transitions refill map, and the
/// per-target scratch (all reused across rows, nothing allocated per
/// firing).
struct QuotientBuilder {
    csr: CsrBuilder,
    enabled_ptr: Vec<u32>,
    enabled_idx: Vec<u32>,
    edge_ptr: Vec<u32>,
    edge_trans: Vec<u32>,
    /// Aggregated rate into each target orbit of the current row.
    acc: Vec<f64>,
    /// Targets of the current row, in first-hit order.
    hit: Vec<u32>,
    /// Contributing transitions per target of the current row (reused
    /// allocations, drained at each row end).
    tbucket: Vec<Vec<u32>>,
    enabled_in_row: usize,
}

impl QuotientBuilder {
    fn new(expected_states: usize, nt: usize) -> Self {
        QuotientBuilder {
            csr: CsrBuilder::with_capacity(expected_states, expected_states * nt / 2),
            enabled_ptr: vec![0],
            enabled_idx: Vec::new(),
            edge_ptr: vec![0],
            edge_trans: Vec::new(),
            acc: Vec::new(),
            hit: Vec::new(),
            tbucket: Vec::new(),
            enabled_in_row: 0,
        }
    }

    /// Record that `t` is enabled in the current representative (every
    /// enabled transition is recorded, including intra-orbit firings that
    /// emit no quotient edge).
    #[inline]
    fn note_enabled(&mut self, t: usize) {
        self.enabled_idx.push(t as u32);
        self.enabled_in_row += 1;
    }

    /// Aggregate one firing of `t` from the current row (state `s`) into
    /// orbit `target`.  Intra-orbit firings are dropped — they are the
    /// quotient's self-loops.
    #[inline]
    fn fire(&mut self, s: u32, target: u32, t: usize, rate: f64) {
        if target == s {
            return;
        }
        if self.acc.len() <= target as usize {
            self.acc.resize(target as usize + 1, 0.0);
            self.tbucket.resize_with(target as usize + 1, Vec::new);
        }
        if self.acc[target as usize] == 0.0 {
            self.hit.push(target);
        }
        self.acc[target as usize] += rate;
        self.tbucket[target as usize].push(t as u32);
    }

    /// Close the current row, emitting its aggregated edges in first-hit
    /// order; `Err(Deadlock)` when no transition was enabled.
    fn end_row(&mut self) -> Result<(), MarkingError> {
        if self.enabled_in_row == 0 {
            return Err(MarkingError::Deadlock);
        }
        self.enabled_in_row = 0;
        for i in 0..self.hit.len() {
            let c = self.hit[i] as usize;
            self.csr.push(c, self.acc[c]);
            self.acc[c] = 0.0;
            self.edge_trans.append(&mut self.tbucket[c]);
            self.edge_ptr.push(self.edge_trans.len() as u32);
        }
        self.hit.clear();
        self.csr.end_row();
        self.enabled_ptr.push(self.enabled_idx.len() as u32);
        Ok(())
    }

    fn finish(
        self,
        reps: MarkingStore,
        orbit_size: Vec<u32>,
        arena_stats: ArenaStats,
    ) -> QuotientGraph {
        QuotientGraph {
            reps,
            ctmc: self.csr.finish(),
            enabled_ptr: self.enabled_ptr,
            enabled_idx: self.enabled_idx,
            edge_ptr: self.edge_ptr,
            edge_trans: self.edge_trans,
            orbit_size,
            arena_stats,
        }
    }
}

impl QuotientGraph {
    /// Explore the reachable orbits of `net` under `sym` directly in the
    /// quotient.  `opts.max_states` bounds the **interned
    /// representatives** (the full chain is `Σ orbit sizes`, up to `m`
    /// times larger), so shapes whose full chain busts the budget can
    /// still be analysed.
    ///
    /// # Panics
    /// Panics unless `sym` is a rate-preserving automorphism of `net`
    /// ([`EventNet::symmetry_valid`]) — aggregated rates are only exact
    /// under that contract, so callers must gate on it (heterogeneous
    /// rate tables take the full-chain path instead).
    pub fn build(
        net: &EventNet,
        sym: &NetSymmetry,
        opts: MarkingOptions,
    ) -> Result<Self, MarkingError> {
        assert!(
            net.symmetry_valid(sym),
            "QuotientGraph::build needs a validated rate-preserving automorphism"
        );
        let canon = match MarkingCanonicalizer::new(&sym.place_perm) {
            Some(c) => c,
            None => unreachable!("symmetry_valid guarantees a permutation"),
        };
        // Same 31-bit id clamp as the plain BFS (the parallel staging
        // flags chunk-local keys in the top bit).
        let opts = MarkingOptions {
            max_states: opts.max_states.min(NEW_BIT as usize - 1),
            ..opts
        };
        let cap = opts.capacity.unwrap_or(1).max(1);
        if net.n_places() <= 8 && cap <= 255 {
            Self::build_packed(net, &canon, opts, cap as u8)
        } else if (canon.order() as usize).saturating_mul(net.n_places()) <= ROT_BUFFER_CAP {
            Self::build_arena_rowrot(net, sym, &canon, opts, i64::from(cap))
        } else {
            Self::build_arena(net, &canon, opts, i64::from(cap))
        }
    }

    /// Optimized generic path: one rotation buffer per **row** instead of
    /// a full canonicalization per **firing**.
    ///
    /// The m rotations `σᵃ(cur)` of the row's marking are materialized
    /// once; a successor's rotations then follow from the automorphism
    /// identity `σᵃ(cur − •t + t•) = σᵃ(cur) − •σᵃ(t) + σᵃ(t)•`, i.e. an
    /// `O(|•t| + |t•|)` delta per rotation (applied in place, undone after
    /// the firing) instead of an `O(n_places)` permutation — on the
    /// Theorem 2 chains that cuts the canonicalization work ~`n_places /
    /// (|•t|+|t•|)`-fold.  The lexicographic minimum over the rotations
    /// (the same representative [`MarkingCanonicalizer`] elects) is the
    /// interning key; the scan stops at the successor's period, which is
    /// also the orbit size.
    fn build_arena_rowrot(
        net: &EventNet,
        sym: &NetSymmetry,
        canon: &MarkingCanonicalizer,
        opts: MarkingOptions,
        cap: i64,
    ) -> Result<Self, MarkingError> {
        let width = net.n_places();
        let nt = net.n_transitions();
        let order = canon.order() as usize;
        let strict_safe = opts.capacity.is_none();

        // Powers of the transition permutation: `tp_pow[a·nt + t] = σᵃ(t)`.
        let mut tp_pow = vec![0u32; order * nt];
        for (t, slot) in tp_pow[..nt].iter_mut().enumerate() {
            *slot = t as u32;
        }
        for a in 1..order {
            for t in 0..nt {
                tp_pow[a * nt + t] = sym.trans_perm[tp_pow[(a - 1) * nt + t] as usize] as u32;
            }
        }

        // Seed: canonical key of the initial marking via the plain path.
        let mut scratch = CanonScratch::new(width);
        let init = net.initial_marking();
        assert_eq!(init.len(), width);
        let period = canon.canonicalize_into(&init, &mut scratch);
        let spill_limit = opts.resolved_spill_limit();
        let mut reps = MarkingArena::with_spill(width, opts.arena_compression, spill_limit);
        reps.push(&init);
        let mut keys = MarkingArena::with_spill(width, opts.arena_compression, spill_limit);
        keys.push(scratch.key());
        let mut orbit_size: Vec<u32> = vec![period];
        let mut interner = ShardedInterner::for_opts(&opts);
        let (id0, fresh) = interner.intern(&keys, scratch.key(), 0);
        debug_assert!(fresh && id0 == 0);

        let mut out = QuotientBuilder::new(1024, nt);
        let mut cur = vec![0u8; width];
        // `rot[a·width..][..width]` holds `σᵃ(cur)`, transiently mutated
        // to `σᵃ(succ)` around each firing.
        let mut rot = vec![0u8; order * width];
        let mut frontier = 0usize;
        let mut n_states = 1usize;
        let mut level_end = 0usize;
        let mut levels = 0usize;

        while frontier < n_states {
            if frontier >= level_end {
                if let Some(e) = keys.take_poison().or_else(|| reps.take_poison()) {
                    return Err(e);
                }
                opts.budget.check(Progress {
                    phase: Phase::QuotientBfs,
                    states: n_states,
                    levels,
                    iterations: 0,
                    arena_bytes: keys.bytes() + reps.bytes() + interner.table_bytes(),
                })?;
                levels += 1;
                level_end = n_states;
                keys.begin_level();
                reps.begin_level();
            }
            let threads = bfs_threads(
                opts.threads,
                n_states - frontier,
                opts.min_states_per_worker,
            );
            if threads > 1 {
                // Parallel level (module docs): each worker canonicalizes
                // its chunk with a private rotation buffer against the
                // frozen interner; the merge replays in chunk order.
                let hi = n_states;
                let chunk = (hi - frontier).div_ceil(threads);
                let stages: Vec<ChunkStage> = std::thread::scope(|scope| {
                    let (interner, keys, reps) = (&interner, &keys, &reps);
                    let tp_pow = tp_pow.as_slice();
                    let handles: Vec<_> = (frontier..hi)
                        .step_by(chunk)
                        .map(|lo| {
                            scope.spawn(move || {
                                Self::explore_rowrot_chunk(
                                    net,
                                    sym,
                                    tp_pow,
                                    strict_safe,
                                    cap,
                                    reps,
                                    keys,
                                    interner,
                                    width,
                                    lo..(lo + chunk).min(hi),
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(stage) => stage,
                            Err(p) => std::panic::resume_unwind(p),
                        })
                        .collect()
                });
                let mut base = frontier as u32;
                for stage in &stages {
                    // Chunk-boundary checkpoint: bounds the coast past a
                    // deadline to one chunk's replay on parallel levels.
                    opts.budget.check(Progress {
                        phase: Phase::QuotientBfs,
                        states: n_states,
                        levels,
                        iterations: 0,
                        arena_bytes: keys.bytes() + reps.bytes() + interner.table_bytes(),
                    })?;
                    Self::merge_quotient_chunk(
                        net,
                        stage,
                        base,
                        &mut interner,
                        &mut keys,
                        &mut reps,
                        &mut orbit_size,
                        width,
                        &mut n_states,
                        opts.max_states,
                        &mut out,
                    )?;
                    base += stage.row_ends.len() as u32;
                }
                frontier = hi;
                continue;
            }

            let s = frontier as u32;
            frontier += 1;
            // Mid-level checkpoint (see the plain BFS): per-level cadence
            // alone cannot honor deadline-plus-grace on million-state
            // levels.
            if s & 0xfff == 0xfff {
                if let Some(e) = keys.take_poison().or_else(|| reps.take_poison()) {
                    return Err(e);
                }
                opts.budget.check(Progress {
                    phase: Phase::QuotientBfs,
                    states: n_states,
                    levels,
                    iterations: 0,
                    arena_bytes: keys.bytes() + reps.bytes() + interner.table_bytes(),
                })?;
            }
            reps.copy_to(s as usize, &mut cur);
            rot[..width].copy_from_slice(&cur);
            for a in 1..order {
                let (prev, rest) = rot.split_at_mut(a * width);
                let prev = &prev[(a - 1) * width..];
                let dst = &mut rest[..width];
                for (p, &img) in sym.place_perm.iter().enumerate() {
                    dst[img] = prev[p];
                }
            }

            'trans: for t in 0..nt {
                for &p in net.inputs(t) {
                    if cur[p] == 0 {
                        continue 'trans;
                    }
                }
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && i64::from(cur[p]) >= cap {
                            continue 'trans;
                        }
                    }
                }
                out.note_enabled(t);
                // rot[a] := σᵃ(succ), by the per-rotation firing delta.
                for a in 0..order {
                    let ta = tp_pow[a * nt + t] as usize;
                    let base = a * width;
                    for &p in net.inputs(ta) {
                        rot[base + p] -= 1;
                    }
                    for &p in net.outputs(ta) {
                        rot[base + p] += 1;
                    }
                }
                if strict_safe {
                    for &p in net.outputs(t) {
                        if rot[p] > 1 {
                            return Err(MarkingError::NotSafe { place: p });
                        }
                    }
                }
                // Lexicographic minimum over the orbit; the scan stops at
                // the successor's period (later rotations repeat).
                let (best, period) = lex_min_rotation(&rot, width, order);
                let probe_range = best * width..(best + 1) * width;
                let (id, is_new) =
                    interner.intern(&keys, &rot[probe_range.clone()], n_states as u32);
                if is_new {
                    if n_states >= opts.max_states {
                        return Err(keys
                            .take_poison()
                            .or_else(|| reps.take_poison())
                            .unwrap_or(MarkingError::TooManyStates(opts.max_states)));
                    }
                    keys.push(&rot[probe_range]);
                    reps.push(&rot[..width]);
                    orbit_size.push(period);
                    n_states += 1;
                }
                out.fire(s, id, t, net.rates[t]);
                // Undo the delta: rot[a] is σᵃ(cur) again.
                for a in 0..order {
                    let ta = tp_pow[a * nt + t] as usize;
                    let base = a * width;
                    for &p in net.outputs(ta) {
                        rot[base + p] -= 1;
                    }
                    for &p in net.inputs(ta) {
                        rot[base + p] += 1;
                    }
                }
            }
            out.end_row().map_err(|e| {
                keys.take_poison()
                    .or_else(|| reps.take_poison())
                    .unwrap_or(e)
            })?;
        }

        if let Some(e) = keys.take_poison().or_else(|| reps.take_poison()) {
            return Err(e);
        }
        let arena_stats = ArenaStats {
            keys_bytes: keys.bytes(),
            reps_bytes: reps.bytes(),
            interner_bytes: interner.table_bytes(),
            spill_bytes: keys.spill_bytes() + reps.spill_bytes(),
            compressed: keys.is_compressed() || reps.is_compressed(),
        };
        Ok(out.finish(MarkingStore::from_arena(reps), orbit_size, arena_stats))
    }

    /// Worker of the parallel rotation-buffer quotient BFS: identical
    /// per-row math to the sequential scan — rotation materialization,
    /// per-rotation firing deltas, lexicographic-minimum election — with
    /// per-thread `rot` scratch, staging each enabled firing with its
    /// orbit target resolved against the level-frozen interner or
    /// deduplicated chunk-locally (key, representative and period
    /// recorded for the merge to intern).
    #[allow(clippy::too_many_arguments)]
    fn explore_rowrot_chunk(
        net: &EventNet,
        sym: &NetSymmetry,
        tp_pow: &[u32],
        strict_safe: bool,
        cap: i64,
        reps: &MarkingArena,
        keys: &MarkingArena,
        interner: &ShardedInterner,
        width: usize,
        states: std::ops::Range<usize>,
    ) -> ChunkStage {
        let nt = net.n_transitions();
        let order = tp_pow.len() / nt.max(1);
        let mut stage = ChunkStage::new(width);
        let mut local = OffsetInterner::with_capacity(64);
        let mut n_local = 0u32;
        let mut rot = vec![0u8; order * width];
        let mut curbuf = vec![0u8; width];
        for s in states {
            let cur = reps.read_at(s, &mut curbuf);
            rot[..width].copy_from_slice(cur);
            for a in 1..order {
                let (prev, rest) = rot.split_at_mut(a * width);
                let prev = &prev[(a - 1) * width..];
                let dst = &mut rest[..width];
                for (p, &img) in sym.place_perm.iter().enumerate() {
                    dst[img] = prev[p];
                }
            }

            'trans: for t in 0..nt {
                for &p in net.inputs(t) {
                    if cur[p] == 0 {
                        continue 'trans;
                    }
                }
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && i64::from(cur[p]) >= cap {
                            continue 'trans;
                        }
                    }
                }
                for a in 0..order {
                    let ta = tp_pow[a * nt + t] as usize;
                    let base = a * width;
                    for &p in net.inputs(ta) {
                        rot[base + p] -= 1;
                    }
                    for &p in net.outputs(ta) {
                        rot[base + p] += 1;
                    }
                }
                if strict_safe {
                    for &p in net.outputs(t) {
                        if rot[p] > 1 {
                            stage.error = Some(MarkingError::NotSafe { place: p });
                            stage.row_ends.push(stage.firings.len() as u32);
                            return stage;
                        }
                    }
                }
                let (best, period) = lex_min_rotation(&rot, width, order);
                let probe = &rot[best * width..(best + 1) * width];
                let code = match interner.find(keys, probe) {
                    Some(id) => id,
                    None => {
                        let (li, fresh) = local.intern(&stage.new_keys, probe, n_local);
                        if fresh {
                            stage.new_keys.push(probe);
                            stage.new_reps.extend_from_slice(&rot[..width]);
                            stage.new_periods.push(period);
                            n_local += 1;
                        }
                        NEW_BIT | li
                    }
                };
                stage.firings.push((t as u32, code));
                for a in 0..order {
                    let ta = tp_pow[a * nt + t] as usize;
                    let base = a * width;
                    for &p in net.outputs(ta) {
                        rot[base + p] -= 1;
                    }
                    for &p in net.inputs(ta) {
                        rot[base + p] += 1;
                    }
                }
            }
            stage.row_ends.push(stage.firings.len() as u32);
        }
        stage
    }

    /// Merge one staged quotient chunk (rows of states `base..`) in chunk
    /// order: replay every enabled firing through the aggregating
    /// [`QuotientBuilder`] — the same first-hit edge order and `f64`
    /// addition sequence as the sequential scan — interning each
    /// chunk-local key (with its representative and orbit period) at
    /// first use, so new orbits receive exactly the sequential ids.
    #[allow(clippy::too_many_arguments)]
    fn merge_quotient_chunk(
        net: &EventNet,
        stage: &ChunkStage,
        base: u32,
        interner: &mut ShardedInterner,
        keys: &mut MarkingArena,
        reps: &mut MarkingArena,
        orbit_size: &mut Vec<u32>,
        width: usize,
        n_states: &mut usize,
        max_states: usize,
        out: &mut QuotientBuilder,
    ) -> Result<(), MarkingError> {
        let n_local = stage.new_periods.len();
        let mut local_ids = vec![EMPTY; n_local];
        let mut f = 0usize;
        for (row, &end) in stage.row_ends.iter().enumerate() {
            let s = base + row as u32;
            for &(t, code) in &stage.firings[f..end as usize] {
                let id = if code & NEW_BIT == 0 {
                    code
                } else {
                    let li = (code & !NEW_BIT) as usize;
                    if local_ids[li] == EMPTY {
                        let key = stage.new_keys.get(li);
                        let (id, is_new) = interner.intern(keys, key, *n_states as u32);
                        if is_new {
                            if *n_states >= max_states {
                                return Err(keys
                                    .take_poison()
                                    .or_else(|| reps.take_poison())
                                    .unwrap_or(MarkingError::TooManyStates(max_states)));
                            }
                            keys.push(key);
                            reps.push(&stage.new_reps[li * width..(li + 1) * width]);
                            orbit_size.push(stage.new_periods[li]);
                            *n_states += 1;
                        }
                        local_ids[li] = id;
                    }
                    local_ids[li]
                };
                out.note_enabled(t as usize);
                out.fire(s, id, t as usize, net.rates[t as usize]);
            }
            f = end as usize;
            if row + 1 == stage.row_ends.len() {
                if let Some(e) = &stage.error {
                    return Err(e.clone());
                }
            }
            out.end_row().map_err(|e| {
                keys.take_poison()
                    .or_else(|| reps.take_poison())
                    .unwrap_or(e)
            })?;
        }
        Ok(())
    }

    /// Generic fallback path (also the oracle the rotation-buffer path is
    /// tested against): byte markings in two arenas (canonical keys for
    /// the interner, first-discovered representatives for the rows), one
    /// full canonicalization per firing.  Used when the rotation buffer
    /// of [`Self::build_arena_rowrot`] would exceed [`ROT_BUFFER_CAP`].
    fn build_arena(
        net: &EventNet,
        canon: &MarkingCanonicalizer,
        opts: MarkingOptions,
        cap: i64,
    ) -> Result<Self, MarkingError> {
        let width = net.n_places();
        let nt = net.n_transitions();
        let strict_safe = opts.capacity.is_none();

        // Reused canonicalization scratch (one per BFS; parallel builds
        // would hold one per worker thread).
        let mut scratch = CanonScratch::new(width);

        let init = net.initial_marking();
        assert_eq!(init.len(), width);
        let period = canon.canonicalize_into(&init, &mut scratch);
        let spill_limit = opts.resolved_spill_limit();
        let mut reps = MarkingArena::with_spill(width, opts.arena_compression, spill_limit);
        reps.push(&init);
        let mut keys = MarkingArena::with_spill(width, opts.arena_compression, spill_limit);
        keys.push(scratch.key());
        let mut orbit_size: Vec<u32> = vec![period];
        let mut interner = ShardedInterner::for_opts(&opts);
        let (id0, fresh) = interner.intern(&keys, scratch.key(), 0);
        debug_assert!(fresh && id0 == 0);

        let mut out = QuotientBuilder::new(1024, nt);
        let mut cur = vec![0u8; width];
        let mut succ = vec![0u8; width];
        let mut frontier = 0usize;
        let mut n_states = 1usize;
        let mut level_end = 0usize;
        let mut levels = 0usize;

        while frontier < n_states {
            if frontier >= level_end {
                if let Some(e) = keys.take_poison().or_else(|| reps.take_poison()) {
                    return Err(e);
                }
                opts.budget.check(Progress {
                    phase: Phase::QuotientBfs,
                    states: n_states,
                    levels,
                    iterations: 0,
                    arena_bytes: keys.bytes() + reps.bytes() + interner.table_bytes(),
                })?;
                levels += 1;
                level_end = n_states;
                keys.begin_level();
                reps.begin_level();
            }
            let s = frontier as u32;
            frontier += 1;
            // Mid-level checkpoint (see the plain BFS).
            if s & 0xfff == 0xfff {
                if let Some(e) = keys.take_poison().or_else(|| reps.take_poison()) {
                    return Err(e);
                }
                opts.budget.check(Progress {
                    phase: Phase::QuotientBfs,
                    states: n_states,
                    levels,
                    iterations: 0,
                    arena_bytes: keys.bytes() + reps.bytes() + interner.table_bytes(),
                })?;
            }
            reps.copy_to(s as usize, &mut cur);

            'trans: for t in 0..nt {
                for &p in net.inputs(t) {
                    if cur[p] == 0 {
                        continue 'trans;
                    }
                }
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && i64::from(cur[p]) >= cap {
                            continue 'trans;
                        }
                    }
                }
                out.note_enabled(t);
                succ.copy_from_slice(&cur);
                for &p in net.inputs(t) {
                    succ[p] -= 1;
                }
                for &p in net.outputs(t) {
                    succ[p] += 1;
                    if strict_safe && succ[p] > 1 {
                        return Err(MarkingError::NotSafe { place: p });
                    }
                }
                let period = canon.canonicalize_into(&succ, &mut scratch);
                let (id, is_new) = interner.intern(&keys, scratch.key(), n_states as u32);
                if is_new {
                    if n_states >= opts.max_states {
                        return Err(keys
                            .take_poison()
                            .or_else(|| reps.take_poison())
                            .unwrap_or(MarkingError::TooManyStates(opts.max_states)));
                    }
                    keys.push(scratch.key());
                    reps.push(&succ);
                    orbit_size.push(period);
                    n_states += 1;
                }
                out.fire(s, id, t, net.rates[t]);
            }
            out.end_row().map_err(|e| {
                keys.take_poison()
                    .or_else(|| reps.take_poison())
                    .unwrap_or(e)
            })?;
        }

        if let Some(e) = keys.take_poison().or_else(|| reps.take_poison()) {
            return Err(e);
        }
        let arena_stats = ArenaStats {
            keys_bytes: keys.bytes(),
            reps_bytes: reps.bytes(),
            interner_bytes: interner.table_bytes(),
            spill_bytes: keys.spill_bytes() + reps.spill_bytes(),
            compressed: keys.is_compressed() || reps.is_compressed(),
        };
        Ok(out.finish(MarkingStore::from_arena(reps), orbit_size, arena_stats))
    }

    /// Packed path for ≤ 8 places: representatives and canonical keys are
    /// single `u64` words.
    fn build_packed(
        net: &EventNet,
        canon: &MarkingCanonicalizer,
        opts: MarkingOptions,
        cap: u8,
    ) -> Result<Self, MarkingError> {
        let width = net.n_places();
        let nt = net.n_transitions();
        let strict_safe = opts.capacity.is_none();
        let packed = PackedNet::build(net);

        let init = pack(&net.initial_marking());
        let (key0, period0) = canon.canonicalize_packed(init);
        let mut reps: Vec<u64> = vec![init];
        let mut orbit_size: Vec<u32> = vec![period0];
        let mut index: FxHashMap<u64, u32> = FxHashMap::default();
        index.insert(key0, 0);

        let mut out = QuotientBuilder::new(1024, nt);
        let mut frontier = 0usize;

        while frontier < reps.len() {
            // No level structure on the packed path: strided checks, as
            // in the plain packed BFS.
            if frontier & 0xfff == 0 {
                opts.budget.check(Progress {
                    phase: Phase::QuotientBfs,
                    states: reps.len(),
                    levels: 0,
                    iterations: frontier,
                    arena_bytes: reps.len() * std::mem::size_of::<u64>(),
                })?;
            }
            let s = frontier as u32;
            let cur = reps[frontier];
            frontier += 1;

            'trans: for t in 0..nt {
                if !packed.enabled(t, cur) {
                    continue;
                }
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && byte(cur, p) >= cap {
                            continue 'trans;
                        }
                    }
                }
                out.note_enabled(t);
                let next = packed.fire(t, cur);
                if strict_safe {
                    for &p in net.outputs(t) {
                        if byte(next, p) > 1 {
                            return Err(MarkingError::NotSafe { place: p });
                        }
                    }
                }
                let (key, period) = canon.canonicalize_packed(next);
                let id = match index.get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = reps.len() as u32;
                        if id as usize >= opts.max_states {
                            return Err(MarkingError::TooManyStates(opts.max_states));
                        }
                        reps.push(next);
                        orbit_size.push(period);
                        index.insert(key, id);
                        id
                    }
                };
                out.fire(s, id, t, net.rates[t]);
            }
            out.end_row()?;
        }

        let mut data = Vec::with_capacity(reps.len() * width);
        for &w in &reps {
            data.extend_from_slice(&w.to_le_bytes()[..width]);
        }
        let arena_stats = ArenaStats {
            keys_bytes: 0,
            reps_bytes: reps.len() * std::mem::size_of::<u64>(),
            interner_bytes: index.capacity()
                * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>()),
            spill_bytes: 0,
            compressed: false,
        };
        Ok(out.finish(
            MarkingStore::from_flat(width, data),
            orbit_size,
            arena_stats,
        ))
    }

    /// Number of orbits (quotient states).
    pub fn n_states(&self) -> usize {
        self.ctmc.n_states()
    }

    /// Number of full-chain states represented: `Σ orbit sizes`.  Equals
    /// the full reachable count whenever the automorphism maps the
    /// reachable set onto itself (always the case when the full-chain
    /// [`MarkingGraph::orbit_partition`] accepts the same hint).
    pub fn full_states(&self) -> usize {
        self.orbit_size.iter().map(|&k| k as usize).sum()
    }

    /// Orbit size of every quotient state.
    pub fn orbit_sizes(&self) -> &[u32] {
        &self.orbit_size
    }

    /// Byte accounting of the build's marking storage (the peak — arenas
    /// and interner only grow during the BFS).
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena_stats
    }

    /// Transitions fireable in the representative of orbit `s`
    /// (ascending).
    pub fn enabled(&self, s: usize) -> &[u32] {
        &self.enabled_idx[self.enabled_ptr[s] as usize..self.enabled_ptr[s + 1] as usize]
    }

    /// The uniform lift of this quotient: block sizes only (per-block
    /// member probability `π̂(B)/|B|`), no full-state map — see
    /// [`Lift::from_block_sizes`].
    pub fn lift(&self) -> Lift {
        Lift::from_block_sizes(self.orbit_size.clone())
    }

    /// The quotient re-rated from per-transition rates: edge `e` gets
    /// `Σ trans_rates[t]` over its contributing transitions, summed in
    /// the order the BFS aggregated them — bitwise identical to building
    /// the quotient of a net with those rates (which must themselves be
    /// orbit-invariant, the caller's gate), at `O(nnz)`.
    ///
    /// # Panics
    /// Panics if `trans_rates` is shorter than the net's transition count
    /// or a summed edge rate is non-positive.
    pub fn ctmc_with_trans_rates(&self, trans_rates: &[f64]) -> Ctmc {
        let rate: Vec<f64> = (0..self.ctmc.nnz())
            .map(|e| {
                self.edge_trans[self.edge_ptr[e] as usize..self.edge_ptr[e + 1] as usize]
                    .iter()
                    .map(|&t| trans_rates[t as usize])
                    .sum()
            })
            .collect();
        self.ctmc.with_rates(rate)
    }

    /// Orbit-aggregated stationary firing rates:
    /// `rate(t) = Σ_B π̂(B) λ_t [t enabled in rep(B)]`.  Entry `t` is
    /// **not** the full chain's per-transition rate (mass concentrates on
    /// the representatives' transitions), but the sum over any
    /// automorphism-closed transition set — a whole TPN column, the
    /// last-column throughput set — equals the full chain's sum exactly.
    pub fn firing_rates_with(&self, trans_rates: &[f64], pi: &[f64]) -> Vec<f64> {
        assert_eq!(pi.len(), self.n_states());
        let mut rates = vec![0.0f64; trans_rates.len()];
        for (s, &p) in pi.iter().enumerate() {
            for &t in self.enabled(s) {
                rates[t as usize] += p * trans_rates[t as usize];
            }
        }
        rates
    }

    /// Stationary distribution of the quotient, then the summed firing
    /// rate of an automorphism-closed transition set (e.g. the TPN's last
    /// column → system throughput).
    pub fn throughput_of(&self, net: &EventNet, transitions: &[usize]) -> f64 {
        self.throughput_with(&self.ctmc, &net.rates, transitions)
    }

    /// As [`QuotientGraph::throughput_of`] for a re-rated chain sharing
    /// this graph's structure (same op order as the owned-chain path, so
    /// refilled and cold solves agree bit for bit).
    pub fn throughput_with(&self, ctmc: &Ctmc, trans_rates: &[f64], transitions: &[usize]) -> f64 {
        self.throughput_solve(ctmc, trans_rates, transitions, SolverChoice::Auto)
            .0
    }

    /// As [`QuotientGraph::throughput_with`], solving the chain with an
    /// explicit [`SolverChoice`] and returning the [`SolveReport`] (which
    /// solver ran, its residual and iteration count) alongside the
    /// throughput.  [`SolverChoice::Auto`] reproduces
    /// [`QuotientGraph::throughput_with`] bit for bit.
    pub fn throughput_solve(
        &self,
        ctmc: &Ctmc,
        trans_rates: &[f64],
        transitions: &[usize],
        choice: SolverChoice,
    ) -> (f64, SolveReport) {
        let report = ctmc.stationary_solve(choice);
        let rates = self.firing_rates_with(trans_rates, &report.pi);
        (transitions.iter().map(|&t| rates[t]).sum(), report)
    }

    /// [`QuotientGraph::throughput_solve`] under a cooperative [`Budget`]:
    /// the stationary solve checks the budget at its checkpoints and
    /// surfaces an overrun as an [`Interrupt`].  Bitwise identical to the
    /// ungoverned path when no limit fires.
    pub fn throughput_solve_governed(
        &self,
        ctmc: &Ctmc,
        trans_rates: &[f64],
        transitions: &[usize],
        choice: SolverChoice,
        budget: &Budget,
    ) -> Result<(f64, SolveReport), Interrupt> {
        let report = ctmc.stationary_solve_governed(choice, budget)?;
        let rates = self.firing_rates_with(trans_rates, &report.pi);
        Ok((transitions.iter().map(|&t| rates[t]).sum(), report))
    }
}

/// Pack a byte marking into a little-endian `u64` word.
fn pack(marking: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf[..marking.len()].copy_from_slice(marking);
    u64::from_le_bytes(buf)
}

/// Byte `p` of a packed marking.
#[inline]
fn byte(word: u64, p: usize) -> u8 {
    (word >> (8 * p)) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::comm_pattern;

    #[test]
    fn single_transition_self_loop() {
        // One transition with a marked self-loop: a Poisson clock.
        let net = EventNet::new(vec![2.0], vec![(0, 0, 1)]);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        assert_eq!(mg.n_states(), 1);
        let rates = mg.firing_rates(&net, &[1.0]);
        assert!((rates[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn two_transition_cycle() {
        // A ⇄ B with one token: alternating firings; each fires at rate
        // 1/(1/λa + 1/λb).
        let net = EventNet::new(vec![2.0, 3.0], vec![(0, 1, 1), (1, 0, 0)]);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        assert_eq!(mg.n_states(), 2);
        let pi = mg.ctmc.stationary();
        let rates = mg.firing_rates(&net, &pi);
        let expect = 1.0 / (1.0 / 2.0 + 1.0 / 3.0);
        assert!((rates[0] - expect).abs() < 1e-10, "{rates:?}");
        assert!((rates[1] - expect).abs() < 1e-10);
    }

    #[test]
    fn pattern_1x1_is_poisson() {
        let net = comm_pattern(1, 1, |_, _| 5.0);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        assert_eq!(mg.n_states(), 1);
        assert!((mg.throughput_of(&net, &[0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn unsafe_net_detected() {
        // Producer feeding a place with no consumer constraint forming
        // accumulation: t0 self-loop marked + place t0→t1, t1 needs also a
        // token that never comes back… simplest: t0 (free-running) feeds
        // t1 which is throttled by a slow self-loop — the middle place
        // accumulates.
        let net = EventNet::new(vec![1.0, 1.0], vec![(0, 0, 1), (0, 1, 0), (1, 1, 1)]);
        let err = MarkingGraph::build(&net, MarkingOptions::default()).unwrap_err();
        assert!(matches!(err, MarkingError::NotSafe { .. }), "{err}");
        // With a capacity it converges.
        let mg = MarkingGraph::build(
            &net,
            MarkingOptions {
                capacity: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(mg.n_states() > 2);
        // Throughput of the sink transition is throttled by both clocks.
        let rho = mg.throughput_of(&net, &[1]);
        assert!(rho < 1.0 && rho > 0.4, "rho {rho}");
    }

    #[test]
    fn capacity_increases_throughput_monotonically() {
        let net = EventNet::new(vec![1.0, 1.0], vec![(0, 0, 1), (0, 1, 0), (1, 1, 1)]);
        let mut last = 0.0;
        for cap in [1, 2, 4, 8, 16] {
            let mg = MarkingGraph::build(
                &net,
                MarkingOptions {
                    capacity: Some(cap),
                    ..Default::default()
                },
            )
            .unwrap();
            let rho = mg.throughput_of(&net, &[1]);
            assert!(rho >= last - 1e-12, "cap {cap}: {rho} < {last}");
            last = rho;
        }
        // Tandem of two rate-1 exponential servers with infinite buffer
        // saturates at 1; with cap 16 we should be close.
        assert!(last > 0.8, "cap-16 throughput {last}");
    }

    #[test]
    fn state_budget_enforced() {
        let net = comm_pattern(4, 5, |_, _| 1.0);
        let err = MarkingGraph::build(
            &net,
            MarkingOptions {
                max_states: 10,
                capacity: None,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, MarkingError::TooManyStates(10)));
    }

    /// The packed-u64 and arena paths must build identical graphs.
    #[test]
    fn packed_and_arena_paths_agree() {
        // 3 places, so `build` dispatches to the packed path; the arena
        // path is forced on the *same* net by calling `build_arena`
        // directly, and every artifact of the two graphs must match.
        let net = EventNet::new(vec![1.0, 2.0], vec![(0, 0, 1), (0, 1, 0), (1, 1, 1)]);
        for cap in [1u32, 3, 7] {
            let opts = MarkingOptions {
                max_states: 1 << 16,
                capacity: Some(cap),
                ..Default::default()
            };
            let fast = MarkingGraph::build(&net, opts).unwrap();
            // Force the arena path on the *same* net.
            let slow = MarkingGraph::build_arena(&net, opts, i64::from(cap)).unwrap();
            assert_eq!(fast.n_states(), slow.n_states(), "cap {cap}");
            assert_eq!(fast.ctmc.nnz(), slow.ctmc.nnz(), "cap {cap}");
            for s in 0..fast.n_states() {
                assert_eq!(
                    fast.states.get(s),
                    slow.states.get(s),
                    "cap {cap} state {s}"
                );
                assert_eq!(fast.enabled(s), slow.enabled(s), "cap {cap} state {s}");
                assert_eq!(
                    fast.ctmc.row_targets(s),
                    slow.ctmc.row_targets(s),
                    "cap {cap} state {s}"
                );
            }
            let a = fast.throughput_of(&net, &[1]);
            let b = slow.throughput_of(&net, &[1]);
            assert!((a - b).abs() < 1e-12, "cap {cap}: {a} vs {b}");
        }
    }

    /// The three quotient build paths (packed, rotation-buffer arena,
    /// per-firing arena) must elect identical graphs: same
    /// representatives, same orbit sizes, same aggregated chain, same
    /// enabled sets and refill maps.
    #[test]
    fn quotient_paths_agree() {
        use crate::net::comm_pattern;
        use repstream_petri::canon::MarkingCanonicalizer;

        // The uniform u×v pattern net carries a row-shift automorphism
        // (transition k ↦ k+1 mod n maps both one-port cycle families
        // onto themselves); 1×4 has 8 places, so `build` dispatches to
        // the packed path while the arena paths are forced directly.
        let (u, v) = (1usize, 4);
        let n = u * v;
        let net = comm_pattern(u, v, |_, _| 1.5);
        let trans_perm: Vec<usize> = (0..n).map(|k| (k + 1) % n).collect();
        // Places: sender cycle k → k+u at index k, receiver cycle k → k+v
        // at index n+k; the shift maps place k ↦ k+1 within each family.
        let place_perm: Vec<usize> = (0..2 * n)
            .map(|p| {
                if p < n {
                    (p + 1) % n
                } else {
                    n + (p + 1 - n) % n
                }
            })
            .collect();
        let sym = NetSymmetry {
            trans_perm,
            place_perm,
        };
        assert!(net.symmetry_valid(&sym));
        let canon = MarkingCanonicalizer::new(&sym.place_perm).unwrap();
        let opts = MarkingOptions::default();

        let packed = QuotientGraph::build(&net, &sym, opts).unwrap();
        let rowrot = QuotientGraph::build_arena_rowrot(&net, &sym, &canon, opts, 1).unwrap();
        let perfiring = QuotientGraph::build_arena(&net, &canon, opts, 1).unwrap();

        for (label, other) in [("rowrot", &rowrot), ("perfiring", &perfiring)] {
            assert_eq!(packed.n_states(), other.n_states(), "{label}");
            assert_eq!(packed.ctmc.nnz(), other.ctmc.nnz(), "{label}");
            assert_eq!(packed.orbit_sizes(), other.orbit_sizes(), "{label}");
            assert_eq!(packed.edge_ptr, other.edge_ptr, "{label}");
            assert_eq!(packed.edge_trans, other.edge_trans, "{label}");
            for s in 0..packed.n_states() {
                assert_eq!(packed.reps.get(s), other.reps.get(s), "{label} rep {s}");
                assert_eq!(packed.enabled(s), other.enabled(s), "{label} state {s}");
                assert_eq!(
                    packed.ctmc.row_targets(s),
                    other.ctmc.row_targets(s),
                    "{label} state {s}"
                );
                for (a, b) in packed.ctmc.row_rates(s).iter().zip(other.ctmc.row_rates(s)) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{label} state {s}");
                }
            }
        }
        // The quotient preserves the Theorem 4 closed form u·v·λ/(u+v−1).
        let all: Vec<usize> = (0..n).collect();
        let rho = packed.throughput_of(&net, &all);
        let expect = (u * v) as f64 * 1.5 / (u + v - 1) as f64;
        assert!((rho - expect).abs() < 1e-12, "rho {rho} vs {expect}");
    }

    /// Delta-arena roundtrip: every pushed marking reads back exactly,
    /// `matches` agrees with equality, and the Auto conversion mid-build
    /// changes nothing a reader can observe.
    #[test]
    fn marking_arena_roundtrip() {
        let width = 24usize;
        // Deterministic pseudo-random markings with level structure.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut markings: Vec<Vec<u8>> = Vec::new();
        let mut level_starts = vec![0usize];
        let mut base = vec![0u8; width];
        for level in 0..6 {
            for (p, b) in base.iter_mut().enumerate() {
                *b = ((level * 7 + p) % 3) as u8;
            }
            let n = 1 + (step() % 40) as usize;
            for _ in 0..n {
                let mut m = base.clone();
                // A few random place edits — the within-level delta.
                for _ in 0..(step() % 5) {
                    let p = (step() as usize) % width;
                    m[p] = (step() % 4) as u8;
                }
                if !markings.contains(&m) {
                    markings.push(m);
                }
            }
            level_starts.push(markings.len());
        }

        for compression in [
            ArenaCompression::Off,
            ArenaCompression::On,
            ArenaCompression::Auto,
        ] {
            let mut arena = MarkingArena::new(width, compression);
            // Force the Auto conversion mid-build by shrinking the
            // threshold below the total payload.
            if compression == ArenaCompression::Auto {
                arena.threshold = markings.len() * width / 2;
            }
            let mut next_level = 0usize;
            for (s, m) in markings.iter().enumerate() {
                if level_starts[next_level] == s {
                    arena.begin_level();
                    next_level += 1;
                }
                arena.push(m);
            }
            assert_eq!(arena.len(), markings.len());
            assert_eq!(
                arena.is_compressed(),
                compression != ArenaCompression::Off,
                "{compression:?}"
            );
            let mut buf = vec![0u8; width];
            for (s, m) in markings.iter().enumerate() {
                arena.copy_to(s, &mut buf);
                assert_eq!(&buf, m, "{compression:?} state {s}");
                assert_eq!(arena.read_at(s, &mut buf), &m[..]);
                assert!(arena.matches(s, m), "{compression:?} state {s}");
                // A probe differing in one byte must not match.
                let mut probe = m.clone();
                probe[s % width] ^= 0x40;
                assert!(!arena.matches(s, &probe), "{compression:?} state {s}");
                let mut scratch = Vec::new();
                assert_eq!(arena.hash_entry(s, &mut scratch), hash_marking(m));
            }
        }
    }

    /// Spilled-arena roundtrip: with the resident bound forced tiny,
    /// every pushed marking still reads back exactly, `matches` agrees
    /// with equality, hashes are unchanged, and the payload really does
    /// land in the spill file — in every compression mode, including an
    /// Auto conversion that has to read its flat payload back from disk.
    #[test]
    fn spilled_arena_roundtrip() {
        let width = 24usize;
        let mut x = 0x2545f4914f6cdd1du64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut markings: Vec<Vec<u8>> = Vec::new();
        let mut level_starts = vec![0usize];
        let mut base = vec![0u8; width];
        for level in 0..6 {
            for (p, b) in base.iter_mut().enumerate() {
                *b = ((level * 5 + p) % 3) as u8;
            }
            let n = 1 + (step() % 40) as usize;
            for _ in 0..n {
                let mut m = base.clone();
                for _ in 0..(step() % 5) {
                    let p = (step() as usize) % width;
                    m[p] = (step() % 4) as u8;
                }
                if !markings.contains(&m) {
                    markings.push(m);
                }
            }
            level_starts.push(markings.len());
        }

        for compression in [
            ArenaCompression::Off,
            ArenaCompression::On,
            ArenaCompression::Auto,
        ] {
            // A ~3-marking resident bound forces many flush cycles, and
            // entries straddle the file/memory boundary mid-marking.
            let mut arena = MarkingArena::with_spill(width, compression, width * 3 + 1);
            if compression == ArenaCompression::Auto {
                arena.threshold = markings.len() * width / 2;
            }
            let mut next_level = 0usize;
            for (s, m) in markings.iter().enumerate() {
                if level_starts[next_level] == s {
                    arena.begin_level();
                    next_level += 1;
                }
                arena.push(m);
            }
            assert_eq!(arena.len(), markings.len());
            assert!(arena.spill_bytes() > 0, "{compression:?} never spilled");
            let mut buf = vec![0u8; width];
            for (s, m) in markings.iter().enumerate() {
                arena.copy_to(s, &mut buf);
                assert_eq!(&buf, m, "{compression:?} state {s}");
                assert_eq!(arena.read_at(s, &mut buf), &m[..]);
                assert!(arena.matches(s, m), "{compression:?} state {s}");
                let mut probe = m.clone();
                probe[s % width] ^= 0x40;
                assert!(!arena.matches(s, &probe), "{compression:?} state {s}");
                let mut scratch = Vec::new();
                assert_eq!(arena.hash_entry(s, &mut scratch), hash_marking(m));
            }
        }
    }

    /// Chain-bit equality of the interning decisions across table
    /// layouts: the budget-presized sharded interner and the legacy
    /// fixed-1024-slot doubling table must return the identical
    /// `(id, is_new)` sequence for the same probe sequence — the id
    /// assignment is the caller's scan order, never the table's.
    #[test]
    fn sharded_interner_matches_legacy_growth_path() {
        let net = comm_pattern(3, 4, |i, j| 1.0 + (i + 3 * j) as f64);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        let width = mg.states.width();

        // Replay every stored marking (plus every marking again, to get
        // hit-paths) against three interner layouts over one arena.
        let mut arena = MarkingArena::new(width, ArenaCompression::Off);
        // Legacy: single shard, no budget jump (plain doubling from the
        // historical 2048-slot start).
        let mut legacy = OffsetInterner::with_capacity(1024);
        let mut sharded = ShardedInterner::new(16, mg.n_states());
        let mut single = ShardedInterner::new(1, 1 << 20);
        let mut n = 0u32;
        let mut probe = Vec::new();
        for pass in 0..2 {
            for s in 0..mg.n_states() {
                probe.clear();
                probe.extend_from_slice(mg.states.get(s));
                let h = hash_marking(&probe);
                let a = legacy.intern_hashed(&arena, h, &probe, n, 0);
                let b = sharded.intern(&arena, &probe, n);
                let c = single.intern(&arena, &probe, n);
                assert_eq!(a, b, "pass {pass} state {s}");
                assert_eq!(a, c, "pass {pass} state {s}");
                if a.1 {
                    arena.push(&probe);
                    n += 1;
                }
            }
        }
        assert_eq!(n as usize, mg.n_states());
    }

    /// A sharded + spilled + compressed build must be bitwise identical
    /// to the default build: the same states, chain bits and enabled
    /// sets — only the storage accounting differs.
    #[test]
    fn spilled_sharded_build_is_bitwise_identical() {
        let net = comm_pattern(2, 3, |i, j| 1.0 + (i + 2 * j) as f64);
        let reference = MarkingGraph::build_arena(
            &net,
            MarkingOptions {
                interner_shards: 1,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let spilled = MarkingGraph::build_arena(
            &net,
            MarkingOptions {
                arena_compression: ArenaCompression::On,
                interner_shards: 16,
                interner_spill: true,
                spill_limit: 64,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        assert!(spilled.arena_stats().spill_bytes > 0, "never spilled");
        assert_eq!(reference.n_states(), spilled.n_states());
        assert_eq!(reference.ctmc.nnz(), spilled.ctmc.nnz());
        let mut buf = Vec::new();
        for s in 0..reference.n_states() {
            assert_eq!(
                reference.states.get(s),
                spilled.states.read_into(s, &mut buf)
            );
            assert_eq!(reference.enabled(s), spilled.enabled(s));
            assert_eq!(reference.ctmc.row_targets(s), spilled.ctmc.row_targets(s));
            for (a, b) in reference
                .ctmc
                .row_rates(s)
                .iter()
                .zip(spilled.ctmc.row_rates(s))
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// A forced-compressed plain build must be bitwise identical to the
    /// flat build: same states, chain, enabled sets — only the storage
    /// accounting differs.
    #[test]
    fn compressed_plain_build_is_bitwise_identical() {
        let net = comm_pattern(2, 3, |i, j| 1.0 + (i + 2 * j) as f64);
        let flat = MarkingGraph::build_arena(
            &net,
            MarkingOptions {
                arena_compression: ArenaCompression::Off,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let packed = MarkingGraph::build_arena(
            &net,
            MarkingOptions {
                arena_compression: ArenaCompression::On,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        assert!(!flat.states.is_compressed());
        assert!(packed.states.is_compressed());
        assert!(packed.arena_stats().compressed);
        assert_eq!(flat.n_states(), packed.n_states());
        assert_eq!(flat.ctmc.nnz(), packed.ctmc.nnz());
        let mut buf = Vec::new();
        for s in 0..flat.n_states() {
            assert_eq!(flat.states.get(s), packed.states.read_into(s, &mut buf));
            assert_eq!(flat.enabled(s), packed.enabled(s));
            assert_eq!(flat.ctmc.row_targets(s), packed.ctmc.row_targets(s));
            for (a, b) in flat.ctmc.row_rates(s).iter().zip(packed.ctmc.row_rates(s)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Safe pattern nets route through the arena path (> 8 places) and
    /// must reproduce the Theorem 3 state count.
    #[test]
    fn arena_pattern_states_match_closed_form() {
        let net = comm_pattern(2, 3, |_, _| 1.0);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        assert_eq!(mg.n_states(), 12); // S(2,3) = C(4,1)·3
        assert_eq!(mg.states.width(), net.n_places());
        // Every stored marking is 0/1 (safe net).
        for m in mg.states.iter() {
            assert!(m.iter().all(|&b| b <= 1));
        }
    }
}
