//! Reachable-marking enumeration: event net → CTMC (Theorem 2).
//!
//! BFS over markings.  For *safe* nets (the Strict TPNs; resource cycles
//! are invariant-bounded to one token) markings stay 0/1 and the chain is
//! the paper's construction verbatim.  For nets with unbounded places (the
//! forward places of Overlap TPNs taken globally) a finite **capacity**
//! must be supplied: a transition is then blocked while one of its output
//! places is at capacity.  Capping adds back-pressure, so the computed
//! throughput under-estimates the infinite-buffer value and increases to it
//! as the capacity grows — the validation experiments sweep the capacity.
//!
//! # Hot-path layout
//!
//! The BFS allocates nothing per firing:
//!
//! * **marking arena** — all reachable markings live in one flat `Vec<u8>`
//!   ([`MarkingStore`]), state `s` at byte offset `s · n_places`.  The
//!   seed kept one `Box<[u8]>` per state *plus* a clone of each as the
//!   hash-map key; on capacity sweeps that was two heap allocations and
//!   ~3× the bytes per state;
//! * **offset-keyed interner** — deduplication probes an open-addressing
//!   table of state ids whose keys *are* arena offsets (slices are
//!   re-read from the arena on compare), so no owned key is ever built;
//! * **scratch successor** — each firing writes the successor marking into
//!   one reused scratch buffer; it is copied into the arena only when the
//!   marking turns out to be new;
//! * **packed-u64 fast path** — nets with ≤ 8 places and token counts
//!   ≤ 255 (every Theorem 3 pattern with `u·v ≤ 4`, and the small tandem
//!   sweeps) keep markings in a single machine word: firing is two mask
//!   adds, the enabledness test is a branch-free zero-byte probe, and
//!   interning hashes one `u64`;
//! * **flat CSR outputs** — both the chain (via [`crate::ctmc::CsrBuilder`])
//!   and the per-state enabled-transition sets are built directly in
//!   compressed sparse row form; `enabled` was previously one `Vec` per
//!   state.

use crate::ctmc::{CsrBuilder, Ctmc};
use crate::fxhash::FxHashMap;
use crate::lump::Partition;
use crate::net::{EventNet, NetSymmetry};
use std::hash::Hasher;

/// Options for marking-graph construction.
#[derive(Debug, Clone, Copy)]
pub struct MarkingOptions {
    /// Hard cap on the number of states (construction fails beyond it).
    pub max_states: usize,
    /// Per-place token capacity.  `None` requires the net to be safe: the
    /// builder fails if any place would exceed one token.
    pub capacity: Option<u32>,
}

impl Default for MarkingOptions {
    fn default() -> Self {
        MarkingOptions {
            max_states: 1 << 20,
            capacity: None,
        }
    }
}

/// Failure modes of the marking BFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarkingError {
    /// The reachable set exceeded `max_states`.
    TooManyStates(usize),
    /// A place exceeded one token while `capacity` was `None`.
    NotSafe {
        /// The offending place.
        place: usize,
    },
    /// No transition is enabled in some reachable marking.
    Deadlock,
}

impl std::fmt::Display for MarkingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarkingError::TooManyStates(n) => write!(f, "marking graph exceeds {n} states"),
            MarkingError::NotSafe { place } => {
                write!(
                    f,
                    "net is not safe: place {place} exceeds one token (supply a capacity)"
                )
            }
            MarkingError::Deadlock => write!(f, "reachable deadlock marking"),
        }
    }
}

impl std::error::Error for MarkingError {}

/// All reachable markings, interned in one flat byte arena: marking `s`
/// is the `n_places`-byte slice at offset `s · n_places`.
#[derive(Debug, Clone)]
pub struct MarkingStore {
    width: usize,
    data: Vec<u8>,
}

impl MarkingStore {
    /// Number of stored markings.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.width).unwrap_or(0)
    }

    /// `true` when no marking is stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Tokens per place of marking `s`.
    pub fn get(&self, s: usize) -> &[u8] {
        &self.data[s * self.width..(s + 1) * self.width]
    }

    /// Places per marking.
    pub fn width(&self) -> usize {
        self.width
    }

    /// All markings in state order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.data.chunks_exact(self.width.max(1))
    }
}

/// The reachability graph of an [`EventNet`] with exponential races.
#[derive(Debug, Clone)]
pub struct MarkingGraph {
    /// All reachable markings (tokens per place), arena-interned.
    pub states: MarkingStore,
    /// The CTMC over those markings.
    pub ctmc: Ctmc,
    /// CSR layout of the enabled sets: state `s` owns
    /// `enabled_idx[enabled_ptr[s]..enabled_ptr[s+1]]`.
    enabled_ptr: Vec<u32>,
    enabled_idx: Vec<u32>,
}

/// Fx hash of a marking slice.
#[inline]
fn hash_marking(m: &[u8]) -> u64 {
    let mut h = crate::fxhash::FxHasher::default();
    h.write(m);
    h.finish()
}

/// Open-addressing interner whose keys are offsets into the marking
/// arena — probing compares slices read back from the arena, so no owned
/// key is ever allocated.
struct OffsetInterner {
    /// State id per slot, or `EMPTY`.
    table: Vec<u32>,
    mask: usize,
    len: usize,
}

const EMPTY: u32 = u32::MAX;

impl OffsetInterner {
    fn with_capacity(states: usize) -> Self {
        let cap = (states.max(8) * 2).next_power_of_two();
        OffsetInterner {
            table: vec![EMPTY; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Find `probe`'s state id, or intern it as `new_id` (the caller must
    /// then append `probe` to the arena to keep ids and offsets in sync).
    #[inline]
    fn intern(&mut self, arena: &[u8], width: usize, probe: &[u8], new_id: u32) -> (u32, bool) {
        if (self.len + 1) * 8 > self.table.len() * 7 {
            self.grow(arena, width);
        }
        let mut slot = hash_marking(probe) as usize & self.mask;
        loop {
            let id = self.table[slot];
            if id == EMPTY {
                self.table[slot] = new_id;
                self.len += 1;
                return (new_id, true);
            }
            let off = id as usize * width;
            if &arena[off..off + width] == probe {
                return (id, false);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    #[cold]
    fn grow(&mut self, arena: &[u8], width: usize) {
        let cap = self.table.len() * 2;
        let mut table = vec![EMPTY; cap];
        let mask = cap - 1;
        for &id in self.table.iter().filter(|&&id| id != EMPTY) {
            let off = id as usize * width;
            let mut slot = hash_marking(&arena[off..off + width]) as usize & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = id;
        }
        self.table = table;
        self.mask = mask;
    }
}

/// Per-transition firing masks of the packed-u64 fast path: place `p`
/// lives in byte `p` of the word.
struct PackedNet {
    /// +1 in each output-place byte.
    add: Vec<u64>,
    /// +1 in each input-place byte.
    sub: Vec<u64>,
    /// 0x01 in each input-place byte (zero-byte probe, low half).
    in_low: Vec<u64>,
    /// 0x80 in each input-place byte (zero-byte probe, high half).
    in_high: Vec<u64>,
}

impl PackedNet {
    fn build(net: &EventNet) -> Self {
        let nt = net.n_transitions();
        let mut p = PackedNet {
            add: vec![0; nt],
            sub: vec![0; nt],
            in_low: vec![0; nt],
            in_high: vec![0; nt],
        };
        for t in 0..nt {
            for &pl in net.inputs(t) {
                p.sub[t] += 1u64 << (8 * pl);
                p.in_low[t] |= 0x01u64 << (8 * pl);
                p.in_high[t] |= 0x80u64 << (8 * pl);
            }
            for &pl in net.outputs(t) {
                p.add[t] += 1u64 << (8 * pl);
            }
        }
        p
    }

    /// All input bytes of `marking` non-zero?  Branch-free zero-byte
    /// probe restricted to the input places: a borrow can only originate
    /// in a zero input byte, so `probe != 0 ⇔ some input place is empty`.
    #[inline]
    fn enabled(&self, t: usize, marking: u64) -> bool {
        marking.wrapping_sub(self.in_low[t]) & !marking & self.in_high[t] == 0
    }

    /// Fire `t` (caller has checked enabledness and capacity, so no byte
    /// borrows or carries).
    #[inline]
    fn fire(&self, t: usize, marking: u64) -> u64 {
        marking.wrapping_sub(self.sub[t]).wrapping_add(self.add[t])
    }
}

/// Shared accumulator of the BFS outputs (chain rows + enabled CSR).
struct GraphBuilder {
    csr: CsrBuilder,
    enabled_ptr: Vec<u32>,
    enabled_idx: Vec<u32>,
    fired_in_row: bool,
}

impl GraphBuilder {
    fn new(expected_states: usize, nt: usize) -> Self {
        GraphBuilder {
            csr: CsrBuilder::with_capacity(expected_states, expected_states * nt / 2),
            enabled_ptr: vec![0],
            enabled_idx: Vec::new(),
            fired_in_row: false,
        }
    }

    #[inline]
    fn push(&mut self, t: usize, target: usize, rate: f64) {
        self.csr.push(target, rate);
        self.enabled_idx.push(t as u32);
        self.fired_in_row = true;
    }

    /// Close state `s`'s row; `Err(Deadlock)` when nothing was enabled.
    #[inline]
    fn end_row(&mut self) -> Result<(), MarkingError> {
        if !self.fired_in_row {
            return Err(MarkingError::Deadlock);
        }
        self.fired_in_row = false;
        self.csr.end_row();
        self.enabled_ptr.push(self.enabled_idx.len() as u32);
        Ok(())
    }
}

impl MarkingGraph {
    /// Explore the reachable markings of `net`.
    pub fn build(net: &EventNet, opts: MarkingOptions) -> Result<Self, MarkingError> {
        // State ids are u32 (in the interner and the CSR); clamp the
        // budget so the id-space bound fires as `TooManyStates` before
        // any id could wrap.
        let opts = MarkingOptions {
            max_states: opts.max_states.min(u32::MAX as usize - 1),
            ..opts
        };
        let cap = opts.capacity.unwrap_or(1).max(1);
        // The packed path stores a place in one byte, so token counts must
        // fit: the capacity bound (or safeness bound 1) keeps them ≤ 255.
        if net.n_places() <= 8 && cap <= 255 {
            Self::build_packed(net, opts, cap as u8)
        } else {
            Self::build_arena(net, opts, cap as i64)
        }
    }

    /// Generic path: arena-interned byte markings, reused scratch buffer.
    fn build_arena(net: &EventNet, opts: MarkingOptions, cap: i64) -> Result<Self, MarkingError> {
        let width = net.n_places();
        let nt = net.n_transitions();
        let strict_safe = opts.capacity.is_none();

        let mut arena: Vec<u8> = net.initial_marking();
        assert_eq!(arena.len(), width);
        let mut interner = OffsetInterner::with_capacity(1024);
        let (id0, fresh) = interner.intern(&[], width.max(1), &arena, 0);
        debug_assert!(fresh && id0 == 0);

        let mut out = GraphBuilder::new(1024, nt);
        let mut cur = vec![0u8; width];
        let mut scratch = vec![0u8; width];
        let mut frontier = 0usize;
        let mut n_states = 1usize;

        while frontier < n_states {
            let s = frontier;
            frontier += 1;
            cur.copy_from_slice(&arena[s * width..(s + 1) * width]);

            'trans: for t in 0..nt {
                // Enabled: all inputs marked…
                for &p in net.inputs(t) {
                    if cur[p] == 0 {
                        continue 'trans;
                    }
                }
                // …and, under a capacity bound, all outputs below cap.
                // Self-loop places (input and output of t) net out to
                // zero, so they never block.  Without a capacity, the
                // firing is attempted and unsafety is reported as an
                // error instead.
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && i64::from(cur[p]) >= cap {
                            continue 'trans;
                        }
                    }
                }
                // Successor marking, into the reused scratch buffer.
                scratch.copy_from_slice(&cur);
                for &p in net.inputs(t) {
                    scratch[p] -= 1;
                }
                for &p in net.outputs(t) {
                    scratch[p] += 1;
                    if strict_safe && scratch[p] > 1 {
                        return Err(MarkingError::NotSafe { place: p });
                    }
                }
                let (id, is_new) = interner.intern(&arena, width, &scratch, n_states as u32);
                if is_new {
                    if n_states >= opts.max_states {
                        return Err(MarkingError::TooManyStates(opts.max_states));
                    }
                    arena.extend_from_slice(&scratch);
                    n_states += 1;
                }
                out.push(t, id as usize, net.rates[t]);
            }
            out.end_row()?;
        }

        Ok(MarkingGraph {
            states: MarkingStore { width, data: arena },
            ctmc: out.csr.finish(),
            enabled_ptr: out.enabled_ptr,
            enabled_idx: out.enabled_idx,
        })
    }

    /// Packed path for ≤ 8 places: markings are single `u64` words.
    fn build_packed(net: &EventNet, opts: MarkingOptions, cap: u8) -> Result<Self, MarkingError> {
        let width = net.n_places();
        let nt = net.n_transitions();
        let strict_safe = opts.capacity.is_none();
        let packed = PackedNet::build(net);

        let init = pack(&net.initial_marking());
        let mut states: Vec<u64> = vec![init];
        let mut index: FxHashMap<u64, u32> = FxHashMap::default();
        index.insert(init, 0);

        let mut out = GraphBuilder::new(1024, nt);
        let mut frontier = 0usize;

        while frontier < states.len() {
            let cur = states[frontier];
            frontier += 1;

            'trans: for t in 0..nt {
                if !packed.enabled(t, cur) {
                    continue;
                }
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && byte(cur, p) >= cap {
                            continue 'trans;
                        }
                    }
                }
                let next = packed.fire(t, cur);
                if strict_safe {
                    for &p in net.outputs(t) {
                        if byte(next, p) > 1 {
                            return Err(MarkingError::NotSafe { place: p });
                        }
                    }
                }
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = states.len() as u32;
                        if id as usize >= opts.max_states {
                            return Err(MarkingError::TooManyStates(opts.max_states));
                        }
                        states.push(next);
                        index.insert(next, id);
                        id
                    }
                };
                out.push(t, id as usize, net.rates[t]);
            }
            out.end_row()?;
        }

        // Materialize the arena from the packed words.
        let mut data = Vec::with_capacity(states.len() * width);
        for &w in &states {
            data.extend_from_slice(&w.to_le_bytes()[..width]);
        }
        Ok(MarkingGraph {
            states: MarkingStore { width, data },
            ctmc: out.csr.finish(),
            enabled_ptr: out.enabled_ptr,
            enabled_idx: out.enabled_idx,
        })
    }

    /// Number of reachable markings.
    pub fn n_states(&self) -> usize {
        self.ctmc.n_states()
    }

    /// Transitions fireable in state `s` (ascending).
    pub fn enabled(&self, s: usize) -> &[u32] {
        &self.enabled_idx[self.enabled_ptr[s] as usize..self.enabled_ptr[s + 1] as usize]
    }

    /// Orbit seed partition of the reachable markings under a net
    /// symmetry: state `s` maps to the state holding the place-permuted
    /// marking, and the cycles of that state permutation become blocks.
    ///
    /// The caller should have validated `sym` with
    /// [`EventNet::symmetry_valid`]; this method adds the *reachability*
    /// check the net-level validation cannot do: a net automorphism that
    /// does not fix the initial marking still induces a CTMC automorphism
    /// **iff** the permuted markings are all reachable (the reachability
    /// graph of these live event nets is strongly connected, so one
    /// escaped image means the hint does not apply).  Returns `None` in
    /// that case — callers fall back to the full chain.
    ///
    /// The resulting partition satisfies the automorphism-orbit contract
    /// of [`crate::lump`], so
    /// [`Ctmc::stationary_lumped`](crate::ctmc::Ctmc::stationary_lumped)
    /// may lift per-state marginals from it.
    pub fn orbit_partition(&self, sym: &NetSymmetry) -> Option<Partition> {
        let n = self.n_states();
        let width = self.states.width();
        if sym.place_perm.len() != width {
            return None;
        }
        // The induced state map σ is propagated *structurally* instead of
        // hashing every permuted marking: once σ(s₀) is known, firing
        // transition `t` from `s` corresponds to firing `trans_perm[t]`
        // from σ(s) (that is what being a net automorphism means), and the
        // marking BFS reaches every state from s₀ — so one marking lookup
        // seeds a pure-integer BFS over the aligned `enabled`/CSR rows.
        // Every propagation step doubles as a validity check: a missing
        // permuted transition, a σ conflict, or a non-injective image
        // proves the hint does not apply and returns `None`.
        let image0: Option<Vec<u8>> = {
            let m0 = self.states.get(0);
            let mut img = vec![0u8; width];
            let mut ok = true;
            for (p, &tokens) in m0.iter().enumerate() {
                let dst = sym.place_perm[p];
                if dst >= width {
                    ok = false;
                    break;
                }
                img[dst] = tokens;
            }
            ok.then_some(img)
        };
        let image0 = image0?;
        let s0_img = (0..n).find(|&s| self.states.get(s) == image0)? as u32;

        let mut sigma = vec![u32::MAX; n];
        let mut taken = vec![false; n];
        sigma[0] = s0_img;
        taken[s0_img as usize] = true;
        let mut stack: Vec<u32> = vec![0];
        let mut visited = 1usize;
        while let Some(s) = stack.pop() {
            let s = s as usize;
            let si = sigma[s] as usize;
            let en_s = self.enabled(s);
            let en_si = self.enabled(si);
            if en_s.len() != en_si.len() {
                return None;
            }
            let row_s = self.ctmc.row_targets(s);
            let row_si = self.ctmc.row_targets(si);
            for (k, &t) in en_s.iter().enumerate() {
                let tp = *sym.trans_perm.get(t as usize)? as u32;
                // Enabled sets are ascending by construction.
                let pos = en_si.binary_search(&tp).ok()?;
                let target = row_s[k] as usize;
                let target_img = row_si[pos];
                if sigma[target] == u32::MAX {
                    if taken[target_img as usize] {
                        return None; // not injective: bogus hint
                    }
                    sigma[target] = target_img;
                    taken[target_img as usize] = true;
                    visited += 1;
                    stack.push(target as u32);
                } else if sigma[target] != target_img {
                    return None; // inconsistent propagation: bogus hint
                }
            }
        }
        if visited != n {
            return None;
        }
        Some(Partition::from_permutation_orbits(&sigma))
    }

    /// Transition fired by each CSR edge of the chain, in edge order (the
    /// enabled-set arrays double as this map: the BFS appends one enabled
    /// transition per chain edge, so `edge_transitions().len() ==
    /// ctmc.nnz()` and edge `e` was produced by firing transition
    /// `edge_transitions()[e]`).
    ///
    /// This is what makes the reachability structure reusable across rate
    /// tables: the chain of a *different* rate assignment over the same
    /// net structure is `ctmc.with_rates(edge rates looked up here)` — see
    /// [`MarkingGraph::ctmc_with_trans_rates`].
    pub fn edge_transitions(&self) -> &[u32] {
        &self.enabled_idx
    }

    /// The chain re-rated from per-transition rates: edge `e` gets
    /// `trans_rates[edge_transitions()[e]]`.  Bitwise identical to
    /// rebuilding the marking graph of a net with those rates (the BFS
    /// order depends only on structure), at `O(nnz)` instead of a full
    /// BFS + interning pass.
    ///
    /// # Panics
    /// Panics if `trans_rates` is shorter than the net's transition count
    /// or contains a non-positive rate.
    pub fn ctmc_with_trans_rates(&self, trans_rates: &[f64]) -> Ctmc {
        let rate: Vec<f64> = self
            .enabled_idx
            .iter()
            .map(|&t| trans_rates[t as usize])
            .collect();
        self.ctmc.with_rates(rate)
    }

    /// Stationary firing rate of every transition:
    /// `rate(t) = Σ_s π(s) λ_t [t enabled in s]`.
    pub fn firing_rates(&self, net: &EventNet, pi: &[f64]) -> Vec<f64> {
        self.firing_rates_with(&net.rates, pi)
    }

    /// As [`MarkingGraph::firing_rates`], from a bare per-transition rate
    /// slice (the re-rated chains of [`MarkingGraph::ctmc_with_trans_rates`]
    /// have no `EventNet` to hand).
    pub fn firing_rates_with(&self, trans_rates: &[f64], pi: &[f64]) -> Vec<f64> {
        assert_eq!(pi.len(), self.n_states());
        let mut rates = vec![0.0f64; trans_rates.len()];
        for (s, &p) in pi.iter().enumerate() {
            for &t in self.enabled(s) {
                rates[t as usize] += p * trans_rates[t as usize];
            }
        }
        rates
    }

    /// Convenience: stationary distribution, then summed firing rate of a
    /// set of transitions (e.g. the TPN's last column → throughput).
    pub fn throughput_of(&self, net: &EventNet, transitions: &[usize]) -> f64 {
        self.throughput_with(&self.ctmc, &net.rates, transitions)
    }

    /// As [`MarkingGraph::throughput_of`] for a re-rated chain sharing
    /// this graph's structure (same op order as the owned-chain path, so
    /// refilled and cold solves agree bit for bit).
    pub fn throughput_with(&self, ctmc: &Ctmc, trans_rates: &[f64], transitions: &[usize]) -> f64 {
        let pi = ctmc.stationary();
        let rates = self.firing_rates_with(trans_rates, &pi);
        transitions.iter().map(|&t| rates[t]).sum()
    }
}

/// Pack a byte marking into a little-endian `u64` word.
fn pack(marking: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf[..marking.len()].copy_from_slice(marking);
    u64::from_le_bytes(buf)
}

/// Byte `p` of a packed marking.
#[inline]
fn byte(word: u64, p: usize) -> u8 {
    (word >> (8 * p)) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::comm_pattern;

    #[test]
    fn single_transition_self_loop() {
        // One transition with a marked self-loop: a Poisson clock.
        let net = EventNet::new(vec![2.0], vec![(0, 0, 1)]);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        assert_eq!(mg.n_states(), 1);
        let rates = mg.firing_rates(&net, &[1.0]);
        assert!((rates[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn two_transition_cycle() {
        // A ⇄ B with one token: alternating firings; each fires at rate
        // 1/(1/λa + 1/λb).
        let net = EventNet::new(vec![2.0, 3.0], vec![(0, 1, 1), (1, 0, 0)]);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        assert_eq!(mg.n_states(), 2);
        let pi = mg.ctmc.stationary();
        let rates = mg.firing_rates(&net, &pi);
        let expect = 1.0 / (1.0 / 2.0 + 1.0 / 3.0);
        assert!((rates[0] - expect).abs() < 1e-10, "{rates:?}");
        assert!((rates[1] - expect).abs() < 1e-10);
    }

    #[test]
    fn pattern_1x1_is_poisson() {
        let net = comm_pattern(1, 1, |_, _| 5.0);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        assert_eq!(mg.n_states(), 1);
        assert!((mg.throughput_of(&net, &[0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn unsafe_net_detected() {
        // Producer feeding a place with no consumer constraint forming
        // accumulation: t0 self-loop marked + place t0→t1, t1 needs also a
        // token that never comes back… simplest: t0 (free-running) feeds
        // t1 which is throttled by a slow self-loop — the middle place
        // accumulates.
        let net = EventNet::new(vec![1.0, 1.0], vec![(0, 0, 1), (0, 1, 0), (1, 1, 1)]);
        let err = MarkingGraph::build(&net, MarkingOptions::default()).unwrap_err();
        assert!(matches!(err, MarkingError::NotSafe { .. }), "{err}");
        // With a capacity it converges.
        let mg = MarkingGraph::build(
            &net,
            MarkingOptions {
                capacity: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(mg.n_states() > 2);
        // Throughput of the sink transition is throttled by both clocks.
        let rho = mg.throughput_of(&net, &[1]);
        assert!(rho < 1.0 && rho > 0.4, "rho {rho}");
    }

    #[test]
    fn capacity_increases_throughput_monotonically() {
        let net = EventNet::new(vec![1.0, 1.0], vec![(0, 0, 1), (0, 1, 0), (1, 1, 1)]);
        let mut last = 0.0;
        for cap in [1, 2, 4, 8, 16] {
            let mg = MarkingGraph::build(
                &net,
                MarkingOptions {
                    capacity: Some(cap),
                    ..Default::default()
                },
            )
            .unwrap();
            let rho = mg.throughput_of(&net, &[1]);
            assert!(rho >= last - 1e-12, "cap {cap}: {rho} < {last}");
            last = rho;
        }
        // Tandem of two rate-1 exponential servers with infinite buffer
        // saturates at 1; with cap 16 we should be close.
        assert!(last > 0.8, "cap-16 throughput {last}");
    }

    #[test]
    fn state_budget_enforced() {
        let net = comm_pattern(4, 5, |_, _| 1.0);
        let err = MarkingGraph::build(
            &net,
            MarkingOptions {
                max_states: 10,
                capacity: None,
            },
        )
        .unwrap_err();
        assert!(matches!(err, MarkingError::TooManyStates(10)));
    }

    /// The packed-u64 and arena paths must build identical graphs.
    #[test]
    fn packed_and_arena_paths_agree() {
        // 3 places, so `build` dispatches to the packed path; the arena
        // path is forced on the *same* net by calling `build_arena`
        // directly, and every artifact of the two graphs must match.
        let net = EventNet::new(vec![1.0, 2.0], vec![(0, 0, 1), (0, 1, 0), (1, 1, 1)]);
        for cap in [1u32, 3, 7] {
            let opts = MarkingOptions {
                max_states: 1 << 16,
                capacity: Some(cap),
            };
            let fast = MarkingGraph::build(&net, opts).unwrap();
            // Force the arena path on the *same* net.
            let slow = MarkingGraph::build_arena(&net, opts, i64::from(cap)).unwrap();
            assert_eq!(fast.n_states(), slow.n_states(), "cap {cap}");
            assert_eq!(fast.ctmc.nnz(), slow.ctmc.nnz(), "cap {cap}");
            for s in 0..fast.n_states() {
                assert_eq!(
                    fast.states.get(s),
                    slow.states.get(s),
                    "cap {cap} state {s}"
                );
                assert_eq!(fast.enabled(s), slow.enabled(s), "cap {cap} state {s}");
                assert_eq!(
                    fast.ctmc.row_targets(s),
                    slow.ctmc.row_targets(s),
                    "cap {cap} state {s}"
                );
            }
            let a = fast.throughput_of(&net, &[1]);
            let b = slow.throughput_of(&net, &[1]);
            assert!((a - b).abs() < 1e-12, "cap {cap}: {a} vs {b}");
        }
    }

    /// Safe pattern nets route through the arena path (> 8 places) and
    /// must reproduce the Theorem 3 state count.
    #[test]
    fn arena_pattern_states_match_closed_form() {
        let net = comm_pattern(2, 3, |_, _| 1.0);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        assert_eq!(mg.n_states(), 12); // S(2,3) = C(4,1)·3
        assert_eq!(mg.states.width(), net.n_places());
        // Every stored marking is 0/1 (safe net).
        for m in mg.states.iter() {
            assert!(m.iter().all(|&b| b <= 1));
        }
    }
}
