//! Reachable-marking enumeration: event net → CTMC (Theorem 2).
//!
//! BFS over markings.  For *safe* nets (the Strict TPNs; resource cycles
//! are invariant-bounded to one token) markings stay 0/1 and the chain is
//! the paper's construction verbatim.  For nets with unbounded places (the
//! forward places of Overlap TPNs taken globally) a finite **capacity**
//! must be supplied: a transition is then blocked while one of its output
//! places is at capacity.  Capping adds back-pressure, so the computed
//! throughput under-estimates the infinite-buffer value and increases to it
//! as the capacity grows — the validation experiments sweep the capacity.
//!
//! # Hot-path layout
//!
//! The BFS allocates nothing per firing:
//!
//! * **marking arena** — all reachable markings live in one flat `Vec<u8>`
//!   ([`MarkingStore`]), state `s` at byte offset `s · n_places`.  The
//!   seed kept one `Box<[u8]>` per state *plus* a clone of each as the
//!   hash-map key; on capacity sweeps that was two heap allocations and
//!   ~3× the bytes per state;
//! * **offset-keyed interner** — deduplication probes an open-addressing
//!   table of state ids whose keys *are* arena offsets (slices are
//!   re-read from the arena on compare), so no owned key is ever built;
//! * **scratch successor** — each firing writes the successor marking into
//!   one reused scratch buffer; it is copied into the arena only when the
//!   marking turns out to be new;
//! * **packed-u64 fast path** — nets with ≤ 8 places and token counts
//!   ≤ 255 (every Theorem 3 pattern with `u·v ≤ 4`, and the small tandem
//!   sweeps) keep markings in a single machine word: firing is two mask
//!   adds, the enabledness test is a branch-free zero-byte probe, and
//!   interning hashes one `u64`;
//! * **flat CSR outputs** — both the chain (via [`crate::ctmc::CsrBuilder`])
//!   and the per-state enabled-transition sets are built directly in
//!   compressed sparse row form; `enabled` was previously one `Vec` per
//!   state.
//!
//! # Direct quotient construction
//!
//! When the net carries a validated rate-preserving automorphism (the TPN
//! row-rotation in the homogeneous setting of Theorem 2),
//! [`QuotientGraph::build`] explores the state space **directly in the
//! quotient**: every successor marking is canonicalized under the
//! automorphism's cyclic group
//! ([`repstream_petri::canon::MarkingCanonicalizer`]) before interning, so
//! the arena only ever holds one representative per orbit — the peak
//! interned-state count is `full / m` on free orbits — and the CSR is
//! emitted with orbit-aggregated rates.  The resulting chain (and its
//! uniform [`Lift`]) is **bitwise identical** to
//! building the full chain and lumping it through
//! [`MarkingGraph::orbit_partition`] +
//! [`Ctmc::quotient`](crate::ctmc::Ctmc::quotient), without ever
//! materializing the full graph or running the orbit/refinement passes.
//! See the [`QuotientGraph`] docs for why the state numbering and rate
//! arithmetic coincide exactly.
//!
//! # Chunk-parallel frontier BFS
//!
//! The queue of a breadth-first search is naturally level-structured: at
//! any moment the discovered-but-unexplored states `frontier..n_states`
//! form a batch whose rows can be scanned independently — every state a
//! row fires into is either already interned (id known) or new to the
//! whole level.  [`MarkingOptions::threads`] splits each such level into
//! one contiguous chunk per `std::thread::scope` worker:
//!
//! * **workers** scan their chunk's rows exactly like the sequential
//!   loop — enabledness, firing, canonicalization (with per-thread
//!   rotation/scratch buffers) — but resolve successor targets against a
//!   **level-frozen** view of the interner.  A miss is deduplicated into
//!   a chunk-local key list instead of being interned; each firing is
//!   staged as a `(transition, target-or-local-key)` record;
//! * the **merge** replays the staged firings sequentially in chunk order
//!   (= global state order), interning each chunk-local key at its first
//!   use.  Because the replay order is the sequential scan order, new
//!   states receive exactly the ids the sequential build assigns, the CSR
//!   rows come out in the same first-hit order, and every `f64` addition
//!   of the rate aggregation happens in the same sequence — the output is
//!   **bitwise identical for any thread count** (the same contract the
//!   parallel power sweep and the engine's batch scorer honor).  Budget
//!   (`TooManyStates`), safety (`NotSafe`) and `Deadlock` errors surface
//!   at the same point of the replay as in the sequential scan.
//!
//! The parallel driver covers the two arena paths — the plain
//! [`MarkingGraph`] BFS (which is also what the quotient degenerates to
//! at `m = 1`) and the rotation-buffer quotient path — where the big
//! chains live; the packed-word paths (≤ 8 places) and the per-firing
//! quotient fallback stay sequential, their state spaces being too small
//! or too budget-bound to amortize a spawn.

use crate::ctmc::{CsrBuilder, Ctmc};
use crate::fxhash::FxHashMap;
use crate::lump::{Lift, Partition};
use crate::net::{EventNet, NetSymmetry};
use repstream_petri::canon::{CanonScratch, MarkingCanonicalizer};
use std::hash::Hasher;

/// Options for marking-graph construction.
#[derive(Debug, Clone, Copy)]
pub struct MarkingOptions {
    /// Hard cap on the number of states (construction fails beyond it).
    pub max_states: usize,
    /// Per-place token capacity.  `None` requires the net to be safe: the
    /// builder fails if any place would exceed one token.
    pub capacity: Option<u32>,
    /// Worker threads of the chunk-parallel frontier BFS (see the module
    /// docs).  `0` (the default) auto-sizes to the machine's core count,
    /// engaging only on levels large enough to amortize the spawns; an
    /// explicit count is honored on any level with at least that many
    /// pending states (`1` forces the sequential scan).  Every choice
    /// produces **bitwise-identical** output.
    pub threads: usize,
}

impl Default for MarkingOptions {
    fn default() -> Self {
        MarkingOptions {
            max_states: 1 << 20,
            capacity: None,
            threads: 0,
        }
    }
}

/// Failure modes of the marking BFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarkingError {
    /// The reachable set exceeded `max_states`.
    TooManyStates(usize),
    /// A place exceeded one token while `capacity` was `None`.
    NotSafe {
        /// The offending place.
        place: usize,
    },
    /// No transition is enabled in some reachable marking.
    Deadlock,
}

impl std::fmt::Display for MarkingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarkingError::TooManyStates(n) => write!(f, "marking graph exceeds {n} states"),
            MarkingError::NotSafe { place } => {
                write!(
                    f,
                    "net is not safe: place {place} exceeds one token (supply a capacity)"
                )
            }
            MarkingError::Deadlock => write!(f, "reachable deadlock marking"),
        }
    }
}

impl std::error::Error for MarkingError {}

/// All reachable markings, interned in one flat byte arena: marking `s`
/// is the `n_places`-byte slice at offset `s · n_places`.
#[derive(Debug, Clone)]
pub struct MarkingStore {
    width: usize,
    data: Vec<u8>,
}

impl MarkingStore {
    /// Number of stored markings.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.width).unwrap_or(0)
    }

    /// `true` when no marking is stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Tokens per place of marking `s`.
    pub fn get(&self, s: usize) -> &[u8] {
        &self.data[s * self.width..(s + 1) * self.width]
    }

    /// Places per marking.
    pub fn width(&self) -> usize {
        self.width
    }

    /// All markings in state order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.data.chunks_exact(self.width.max(1))
    }
}

/// The reachability graph of an [`EventNet`] with exponential races.
#[derive(Debug, Clone)]
pub struct MarkingGraph {
    /// All reachable markings (tokens per place), arena-interned.
    pub states: MarkingStore,
    /// The CTMC over those markings.
    pub ctmc: Ctmc,
    /// CSR layout of the enabled sets: state `s` owns
    /// `enabled_idx[enabled_ptr[s]..enabled_ptr[s+1]]`.
    enabled_ptr: Vec<u32>,
    enabled_idx: Vec<u32>,
}

/// Fx hash of a marking slice.
#[inline]
fn hash_marking(m: &[u8]) -> u64 {
    let mut h = crate::fxhash::FxHasher::default();
    h.write(m);
    h.finish()
}

/// Open-addressing interner whose keys are offsets into the marking
/// arena — probing compares slices read back from the arena, so no owned
/// key is ever allocated.
struct OffsetInterner {
    /// State id per slot, or `EMPTY`.
    table: Vec<u32>,
    mask: usize,
    len: usize,
}

const EMPTY: u32 = u32::MAX;

impl OffsetInterner {
    fn with_capacity(states: usize) -> Self {
        let cap = (states.max(8) * 2).next_power_of_two();
        OffsetInterner {
            table: vec![EMPTY; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Find `probe`'s state id, or intern it as `new_id` (the caller must
    /// then append `probe` to the arena to keep ids and offsets in sync).
    #[inline]
    fn intern(&mut self, arena: &[u8], width: usize, probe: &[u8], new_id: u32) -> (u32, bool) {
        if (self.len + 1) * 8 > self.table.len() * 7 {
            self.grow(arena, width);
        }
        let mut slot = hash_marking(probe) as usize & self.mask;
        loop {
            let id = self.table[slot];
            if id == EMPTY {
                self.table[slot] = new_id;
                self.len += 1;
                return (new_id, true);
            }
            let off = id as usize * width;
            if &arena[off..off + width] == probe {
                return (id, false);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Read-only probe: `probe`'s state id if it is interned, else
    /// `None`.  This is the **level-frozen** lookup of the parallel BFS
    /// workers — the table is shared immutably across threads while a
    /// level is being explored, so states discovered *within* the level
    /// miss here and are deduplicated chunk-locally instead.
    #[inline]
    fn find(&self, arena: &[u8], width: usize, probe: &[u8]) -> Option<u32> {
        let mut slot = hash_marking(probe) as usize & self.mask;
        loop {
            let id = self.table[slot];
            if id == EMPTY {
                return None;
            }
            let off = id as usize * width;
            if &arena[off..off + width] == probe {
                return Some(id);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    #[cold]
    fn grow(&mut self, arena: &[u8], width: usize) {
        let cap = self.table.len() * 2;
        let mut table = vec![EMPTY; cap];
        let mask = cap - 1;
        for &id in self.table.iter().filter(|&&id| id != EMPTY) {
            let off = id as usize * width;
            let mut slot = hash_marking(&arena[off..off + width]) as usize & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = id;
        }
        self.table = table;
        self.mask = mask;
    }
}

/// Coded-target flag of the parallel staging: targets carrying this bit
/// index a chunk-local new-key list instead of naming a global state id
/// (ids therefore live in 31 bits — `max_states` is clamped below it).
const NEW_BIT: u32 = 1 << 31;

/// Pending states each auto-sized worker must get before a level is
/// chunked (spawning a scope thread costs tens of microseconds; a smaller
/// slice of BFS work cannot amortize it).  Explicit thread requests skip
/// this gate — output is bitwise identical either way.
const PAR_MIN_STATES_PER_THREAD: usize = 256;

/// Worker count for a BFS level with `pending` unexplored states: an
/// explicit request is honored (clamped to one state per worker), `0`
/// auto-sizes to the core count ([`crate::ctmc::num_cores`], shared with
/// the power sweep) gated by [`PAR_MIN_STATES_PER_THREAD`].
fn bfs_threads(requested: usize, pending: usize) -> usize {
    match requested {
        0 => crate::ctmc::num_cores()
            .min(pending / PAR_MIN_STATES_PER_THREAD)
            .max(1),
        t => t.min(pending).max(1),
    }
}

/// Staged exploration of one chunk of a parallel BFS level (see the
/// module docs): every firing is recorded with its target either resolved
/// against the level-frozen interner or deduplicated into the chunk-local
/// new-key list, for the sequential merge to replay in chunk order.
#[derive(Default)]
struct ChunkStage {
    /// `(transition, coded target)` per firing, in scan order; targets
    /// carrying [`NEW_BIT`] index the new-key list.
    firings: Vec<(u32, u32)>,
    /// Exclusive end in `firings` of each explored state's row.
    row_ends: Vec<u32>,
    /// Chunk-local unique canonical keys (width-strided), in
    /// first-appearance order.
    new_keys: Vec<u8>,
    /// First-discovered representative per new key (quotient chunks; the
    /// plain BFS leaves it empty — its keys *are* the markings).
    new_reps: Vec<u8>,
    /// Orbit period per new key (quotient chunks only).
    new_periods: Vec<u32>,
    /// Error that cut the scan short (the last staged row is then
    /// partial and the merge re-raises the error at that point).
    error: Option<MarkingError>,
}

/// Lexicographic-minimum rotation of the successor held in `rot`
/// (rotation `a` lives at `rot[a·width..][..width]`), returning
/// `(best rotation index, orbit period)`.  The scan stops at the
/// successor's period — later rotations repeat — which is also the orbit
/// size.  Shared by the sequential rotation-buffer scan and its parallel
/// workers so both elect the identical representative.
#[inline]
fn lex_min_rotation(rot: &[u8], width: usize, order: usize) -> (usize, u32) {
    let mut best = 0usize;
    let mut period = order as u32;
    for a in 1..order {
        let c = &rot[a * width..(a + 1) * width];
        if c == &rot[..width] {
            period = a as u32;
            break;
        }
        if c < &rot[best * width..(best + 1) * width] {
            best = a;
        }
    }
    (best, period)
}

/// Per-transition firing masks of the packed-u64 fast path: place `p`
/// lives in byte `p` of the word.
struct PackedNet {
    /// +1 in each output-place byte.
    add: Vec<u64>,
    /// +1 in each input-place byte.
    sub: Vec<u64>,
    /// 0x01 in each input-place byte (zero-byte probe, low half).
    in_low: Vec<u64>,
    /// 0x80 in each input-place byte (zero-byte probe, high half).
    in_high: Vec<u64>,
}

impl PackedNet {
    fn build(net: &EventNet) -> Self {
        let nt = net.n_transitions();
        let mut p = PackedNet {
            add: vec![0; nt],
            sub: vec![0; nt],
            in_low: vec![0; nt],
            in_high: vec![0; nt],
        };
        for t in 0..nt {
            for &pl in net.inputs(t) {
                p.sub[t] += 1u64 << (8 * pl);
                p.in_low[t] |= 0x01u64 << (8 * pl);
                p.in_high[t] |= 0x80u64 << (8 * pl);
            }
            for &pl in net.outputs(t) {
                p.add[t] += 1u64 << (8 * pl);
            }
        }
        p
    }

    /// All input bytes of `marking` non-zero?  Branch-free zero-byte
    /// probe restricted to the input places: a borrow can only originate
    /// in a zero input byte, so `probe != 0 ⇔ some input place is empty`.
    #[inline]
    fn enabled(&self, t: usize, marking: u64) -> bool {
        marking.wrapping_sub(self.in_low[t]) & !marking & self.in_high[t] == 0
    }

    /// Fire `t` (caller has checked enabledness and capacity, so no byte
    /// borrows or carries).
    #[inline]
    fn fire(&self, t: usize, marking: u64) -> u64 {
        marking.wrapping_sub(self.sub[t]).wrapping_add(self.add[t])
    }
}

/// Shared accumulator of the BFS outputs (chain rows + enabled CSR).
struct GraphBuilder {
    csr: CsrBuilder,
    enabled_ptr: Vec<u32>,
    enabled_idx: Vec<u32>,
    fired_in_row: bool,
}

impl GraphBuilder {
    fn new(expected_states: usize, nt: usize) -> Self {
        GraphBuilder {
            csr: CsrBuilder::with_capacity(expected_states, expected_states * nt / 2),
            enabled_ptr: vec![0],
            enabled_idx: Vec::new(),
            fired_in_row: false,
        }
    }

    #[inline]
    fn push(&mut self, t: usize, target: usize, rate: f64) {
        self.csr.push(target, rate);
        self.enabled_idx.push(t as u32);
        self.fired_in_row = true;
    }

    /// Close state `s`'s row; `Err(Deadlock)` when nothing was enabled.
    #[inline]
    fn end_row(&mut self) -> Result<(), MarkingError> {
        if !self.fired_in_row {
            return Err(MarkingError::Deadlock);
        }
        self.fired_in_row = false;
        self.csr.end_row();
        self.enabled_ptr.push(self.enabled_idx.len() as u32);
        Ok(())
    }
}

impl MarkingGraph {
    /// Explore the reachable markings of `net`.
    pub fn build(net: &EventNet, opts: MarkingOptions) -> Result<Self, MarkingError> {
        // State ids are u32 in the interner and the CSR, and the parallel
        // staging codes them in 31 bits (the top bit flags chunk-local
        // keys); clamp the budget so the id-space bound fires as
        // `TooManyStates` before any id could wrap.
        let opts = MarkingOptions {
            max_states: opts.max_states.min(NEW_BIT as usize - 1),
            ..opts
        };
        let cap = opts.capacity.unwrap_or(1).max(1);
        // The packed path stores a place in one byte, so token counts must
        // fit: the capacity bound (or safeness bound 1) keeps them ≤ 255.
        if net.n_places() <= 8 && cap <= 255 {
            Self::build_packed(net, opts, cap as u8)
        } else {
            Self::build_arena(net, opts, cap as i64)
        }
    }

    /// Generic path: arena-interned byte markings, reused scratch buffer.
    /// Levels large enough for [`MarkingOptions::threads`] are scanned by
    /// the chunk-parallel workers (see the module docs); either way the
    /// output is bitwise identical.
    fn build_arena(net: &EventNet, opts: MarkingOptions, cap: i64) -> Result<Self, MarkingError> {
        let width = net.n_places();
        let nt = net.n_transitions();
        let strict_safe = opts.capacity.is_none();

        let mut arena: Vec<u8> = net.initial_marking();
        assert_eq!(arena.len(), width);
        let mut interner = OffsetInterner::with_capacity(1024);
        let (id0, fresh) = interner.intern(&[], width.max(1), &arena, 0);
        debug_assert!(fresh && id0 == 0);

        let mut out = GraphBuilder::new(1024, nt);
        let mut cur = vec![0u8; width];
        let mut scratch = vec![0u8; width];
        let mut frontier = 0usize;
        let mut n_states = 1usize;

        while frontier < n_states {
            let threads = bfs_threads(opts.threads, n_states - frontier);
            if threads > 1 {
                // Parallel level: freeze the interner/arena over the
                // pending range, stage one chunk per worker, merge in
                // chunk order.
                let hi = n_states;
                let chunk = (hi - frontier).div_ceil(threads);
                let stages: Vec<ChunkStage> = std::thread::scope(|scope| {
                    let (interner, arena) = (&interner, arena.as_slice());
                    let handles: Vec<_> = (frontier..hi)
                        .step_by(chunk)
                        .map(|lo| {
                            scope.spawn(move || {
                                Self::explore_plain_chunk(
                                    net,
                                    strict_safe,
                                    cap,
                                    arena,
                                    interner,
                                    width,
                                    lo..(lo + chunk).min(hi),
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("marking BFS worker panicked"))
                        .collect()
                });
                for stage in &stages {
                    Self::merge_plain_chunk(
                        net,
                        stage,
                        &mut interner,
                        &mut arena,
                        width,
                        &mut n_states,
                        opts.max_states,
                        &mut out,
                    )?;
                }
                frontier = hi;
                continue;
            }

            let s = frontier;
            frontier += 1;
            cur.copy_from_slice(&arena[s * width..(s + 1) * width]);

            'trans: for t in 0..nt {
                // Enabled: all inputs marked…
                for &p in net.inputs(t) {
                    if cur[p] == 0 {
                        continue 'trans;
                    }
                }
                // …and, under a capacity bound, all outputs below cap.
                // Self-loop places (input and output of t) net out to
                // zero, so they never block.  Without a capacity, the
                // firing is attempted and unsafety is reported as an
                // error instead.
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && i64::from(cur[p]) >= cap {
                            continue 'trans;
                        }
                    }
                }
                // Successor marking, into the reused scratch buffer.
                scratch.copy_from_slice(&cur);
                for &p in net.inputs(t) {
                    scratch[p] -= 1;
                }
                for &p in net.outputs(t) {
                    scratch[p] += 1;
                    if strict_safe && scratch[p] > 1 {
                        return Err(MarkingError::NotSafe { place: p });
                    }
                }
                let (id, is_new) = interner.intern(&arena, width, &scratch, n_states as u32);
                if is_new {
                    if n_states >= opts.max_states {
                        return Err(MarkingError::TooManyStates(opts.max_states));
                    }
                    arena.extend_from_slice(&scratch);
                    n_states += 1;
                }
                out.push(t, id as usize, net.rates[t]);
            }
            out.end_row()?;
        }

        Ok(MarkingGraph {
            states: MarkingStore { width, data: arena },
            ctmc: out.csr.finish(),
            enabled_ptr: out.enabled_ptr,
            enabled_idx: out.enabled_idx,
        })
    }

    /// Worker of the parallel plain BFS: scan the rows of `states` (a
    /// chunk of one level) exactly like the sequential loop, staging each
    /// firing with its target resolved against the level-frozen interner
    /// or deduplicated chunk-locally.
    fn explore_plain_chunk(
        net: &EventNet,
        strict_safe: bool,
        cap: i64,
        arena: &[u8],
        interner: &OffsetInterner,
        width: usize,
        states: std::ops::Range<usize>,
    ) -> ChunkStage {
        let nt = net.n_transitions();
        let mut stage = ChunkStage::default();
        let mut local = OffsetInterner::with_capacity(64);
        let mut n_local = 0u32;
        let mut scratch = vec![0u8; width];
        for s in states {
            let cur = &arena[s * width..(s + 1) * width];
            'trans: for t in 0..nt {
                for &p in net.inputs(t) {
                    if cur[p] == 0 {
                        continue 'trans;
                    }
                }
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && i64::from(cur[p]) >= cap {
                            continue 'trans;
                        }
                    }
                }
                scratch.copy_from_slice(cur);
                for &p in net.inputs(t) {
                    scratch[p] -= 1;
                }
                for &p in net.outputs(t) {
                    scratch[p] += 1;
                    if strict_safe && scratch[p] > 1 {
                        stage.error = Some(MarkingError::NotSafe { place: p });
                        stage.row_ends.push(stage.firings.len() as u32);
                        return stage;
                    }
                }
                let code = match interner.find(arena, width, &scratch) {
                    Some(id) => id,
                    None => {
                        let (li, fresh) = local.intern(&stage.new_keys, width, &scratch, n_local);
                        if fresh {
                            stage.new_keys.extend_from_slice(&scratch);
                            n_local += 1;
                        }
                        NEW_BIT | li
                    }
                };
                stage.firings.push((t as u32, code));
            }
            stage.row_ends.push(stage.firings.len() as u32);
        }
        stage
    }

    /// Merge one staged chunk into the build in chunk order: replay the
    /// firings sequentially, interning each chunk-local key at its first
    /// use — the same intern sequence, row order and error points as the
    /// sequential scan, hence bitwise-identical output.
    #[allow(clippy::too_many_arguments)]
    fn merge_plain_chunk(
        net: &EventNet,
        stage: &ChunkStage,
        interner: &mut OffsetInterner,
        arena: &mut Vec<u8>,
        width: usize,
        n_states: &mut usize,
        max_states: usize,
        out: &mut GraphBuilder,
    ) -> Result<(), MarkingError> {
        let n_local = stage.new_keys.len() / width.max(1);
        let mut local_ids = vec![EMPTY; n_local];
        let mut f = 0usize;
        for (row, &end) in stage.row_ends.iter().enumerate() {
            for &(t, code) in &stage.firings[f..end as usize] {
                let id = if code & NEW_BIT == 0 {
                    code
                } else {
                    let li = (code & !NEW_BIT) as usize;
                    if local_ids[li] == EMPTY {
                        let key = &stage.new_keys[li * width..(li + 1) * width];
                        let (id, is_new) = interner.intern(arena, width, key, *n_states as u32);
                        if is_new {
                            if *n_states >= max_states {
                                return Err(MarkingError::TooManyStates(max_states));
                            }
                            arena.extend_from_slice(key);
                            *n_states += 1;
                        }
                        local_ids[li] = id;
                    }
                    local_ids[li]
                };
                out.push(t as usize, id as usize, net.rates[t as usize]);
            }
            f = end as usize;
            if row + 1 == stage.row_ends.len() {
                if let Some(e) = &stage.error {
                    return Err(e.clone());
                }
            }
            out.end_row()?;
        }
        Ok(())
    }

    /// Packed path for ≤ 8 places: markings are single `u64` words.
    fn build_packed(net: &EventNet, opts: MarkingOptions, cap: u8) -> Result<Self, MarkingError> {
        let width = net.n_places();
        let nt = net.n_transitions();
        let strict_safe = opts.capacity.is_none();
        let packed = PackedNet::build(net);

        let init = pack(&net.initial_marking());
        let mut states: Vec<u64> = vec![init];
        let mut index: FxHashMap<u64, u32> = FxHashMap::default();
        index.insert(init, 0);

        let mut out = GraphBuilder::new(1024, nt);
        let mut frontier = 0usize;

        while frontier < states.len() {
            let cur = states[frontier];
            frontier += 1;

            'trans: for t in 0..nt {
                if !packed.enabled(t, cur) {
                    continue;
                }
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && byte(cur, p) >= cap {
                            continue 'trans;
                        }
                    }
                }
                let next = packed.fire(t, cur);
                if strict_safe {
                    for &p in net.outputs(t) {
                        if byte(next, p) > 1 {
                            return Err(MarkingError::NotSafe { place: p });
                        }
                    }
                }
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = states.len() as u32;
                        if id as usize >= opts.max_states {
                            return Err(MarkingError::TooManyStates(opts.max_states));
                        }
                        states.push(next);
                        index.insert(next, id);
                        id
                    }
                };
                out.push(t, id as usize, net.rates[t]);
            }
            out.end_row()?;
        }

        // Materialize the arena from the packed words.
        let mut data = Vec::with_capacity(states.len() * width);
        for &w in &states {
            data.extend_from_slice(&w.to_le_bytes()[..width]);
        }
        Ok(MarkingGraph {
            states: MarkingStore { width, data },
            ctmc: out.csr.finish(),
            enabled_ptr: out.enabled_ptr,
            enabled_idx: out.enabled_idx,
        })
    }

    /// Number of reachable markings.
    pub fn n_states(&self) -> usize {
        self.ctmc.n_states()
    }

    /// Transitions fireable in state `s` (ascending).
    pub fn enabled(&self, s: usize) -> &[u32] {
        &self.enabled_idx[self.enabled_ptr[s] as usize..self.enabled_ptr[s + 1] as usize]
    }

    /// Orbit seed partition of the reachable markings under a net
    /// symmetry: state `s` maps to the state holding the place-permuted
    /// marking, and the cycles of that state permutation become blocks.
    ///
    /// The caller should have validated `sym` with
    /// [`EventNet::symmetry_valid`]; this method adds the *reachability*
    /// check the net-level validation cannot do: a net automorphism that
    /// does not fix the initial marking still induces a CTMC automorphism
    /// **iff** the permuted markings are all reachable (the reachability
    /// graph of these live event nets is strongly connected, so one
    /// escaped image means the hint does not apply).  Returns `None` in
    /// that case — callers fall back to the full chain.
    ///
    /// The resulting partition satisfies the automorphism-orbit contract
    /// of [`crate::lump`], so
    /// [`Ctmc::stationary_lumped`](crate::ctmc::Ctmc::stationary_lumped)
    /// may lift per-state marginals from it.
    pub fn orbit_partition(&self, sym: &NetSymmetry) -> Option<Partition> {
        let n = self.n_states();
        let width = self.states.width();
        if sym.place_perm.len() != width {
            return None;
        }
        // The induced state map σ is propagated *structurally* instead of
        // hashing every permuted marking: once σ(s₀) is known, firing
        // transition `t` from `s` corresponds to firing `trans_perm[t]`
        // from σ(s) (that is what being a net automorphism means), and the
        // marking BFS reaches every state from s₀ — so one marking lookup
        // seeds a pure-integer BFS over the aligned `enabled`/CSR rows.
        // Every propagation step doubles as a validity check: a missing
        // permuted transition, a σ conflict, or a non-injective image
        // proves the hint does not apply and returns `None`.
        let image0: Option<Vec<u8>> = {
            let m0 = self.states.get(0);
            let mut img = vec![0u8; width];
            let mut ok = true;
            for (p, &tokens) in m0.iter().enumerate() {
                let dst = sym.place_perm[p];
                if dst >= width {
                    ok = false;
                    break;
                }
                img[dst] = tokens;
            }
            ok.then_some(img)
        };
        let image0 = image0?;
        let s0_img = (0..n).find(|&s| self.states.get(s) == image0)? as u32;

        let mut sigma = vec![u32::MAX; n];
        let mut taken = vec![false; n];
        sigma[0] = s0_img;
        taken[s0_img as usize] = true;
        let mut stack: Vec<u32> = vec![0];
        let mut visited = 1usize;
        while let Some(s) = stack.pop() {
            let s = s as usize;
            let si = sigma[s] as usize;
            let en_s = self.enabled(s);
            let en_si = self.enabled(si);
            if en_s.len() != en_si.len() {
                return None;
            }
            let row_s = self.ctmc.row_targets(s);
            let row_si = self.ctmc.row_targets(si);
            for (k, &t) in en_s.iter().enumerate() {
                let tp = *sym.trans_perm.get(t as usize)? as u32;
                // Enabled sets are ascending by construction.
                let pos = en_si.binary_search(&tp).ok()?;
                let target = row_s[k] as usize;
                let target_img = row_si[pos];
                if sigma[target] == u32::MAX {
                    if taken[target_img as usize] {
                        return None; // not injective: bogus hint
                    }
                    sigma[target] = target_img;
                    taken[target_img as usize] = true;
                    visited += 1;
                    stack.push(target as u32);
                } else if sigma[target] != target_img {
                    return None; // inconsistent propagation: bogus hint
                }
            }
        }
        if visited != n {
            return None;
        }
        Some(Partition::from_permutation_orbits(&sigma))
    }

    /// Transition fired by each CSR edge of the chain, in edge order (the
    /// enabled-set arrays double as this map: the BFS appends one enabled
    /// transition per chain edge, so `edge_transitions().len() ==
    /// ctmc.nnz()` and edge `e` was produced by firing transition
    /// `edge_transitions()[e]`).
    ///
    /// This is what makes the reachability structure reusable across rate
    /// tables: the chain of a *different* rate assignment over the same
    /// net structure is `ctmc.with_rates(edge rates looked up here)` — see
    /// [`MarkingGraph::ctmc_with_trans_rates`].
    pub fn edge_transitions(&self) -> &[u32] {
        &self.enabled_idx
    }

    /// The chain re-rated from per-transition rates: edge `e` gets
    /// `trans_rates[edge_transitions()[e]]`.  Bitwise identical to
    /// rebuilding the marking graph of a net with those rates (the BFS
    /// order depends only on structure), at `O(nnz)` instead of a full
    /// BFS + interning pass.
    ///
    /// # Panics
    /// Panics if `trans_rates` is shorter than the net's transition count
    /// or contains a non-positive rate.
    pub fn ctmc_with_trans_rates(&self, trans_rates: &[f64]) -> Ctmc {
        let rate: Vec<f64> = self
            .enabled_idx
            .iter()
            .map(|&t| trans_rates[t as usize])
            .collect();
        self.ctmc.with_rates(rate)
    }

    /// Stationary firing rate of every transition:
    /// `rate(t) = Σ_s π(s) λ_t [t enabled in s]`.
    pub fn firing_rates(&self, net: &EventNet, pi: &[f64]) -> Vec<f64> {
        self.firing_rates_with(&net.rates, pi)
    }

    /// As [`MarkingGraph::firing_rates`], from a bare per-transition rate
    /// slice (the re-rated chains of [`MarkingGraph::ctmc_with_trans_rates`]
    /// have no `EventNet` to hand).
    pub fn firing_rates_with(&self, trans_rates: &[f64], pi: &[f64]) -> Vec<f64> {
        assert_eq!(pi.len(), self.n_states());
        let mut rates = vec![0.0f64; trans_rates.len()];
        for (s, &p) in pi.iter().enumerate() {
            for &t in self.enabled(s) {
                rates[t as usize] += p * trans_rates[t as usize];
            }
        }
        rates
    }

    /// Convenience: stationary distribution, then summed firing rate of a
    /// set of transitions (e.g. the TPN's last column → throughput).
    pub fn throughput_of(&self, net: &EventNet, transitions: &[usize]) -> f64 {
        self.throughput_with(&self.ctmc, &net.rates, transitions)
    }

    /// As [`MarkingGraph::throughput_of`] for a re-rated chain sharing
    /// this graph's structure (same op order as the owned-chain path, so
    /// refilled and cold solves agree bit for bit).
    pub fn throughput_with(&self, ctmc: &Ctmc, trans_rates: &[f64], transitions: &[usize]) -> f64 {
        let pi = ctmc.stationary();
        let rates = self.firing_rates_with(trans_rates, &pi);
        transitions.iter().map(|&t| rates[t]).sum()
    }
}

/// The symmetry-reduced reachability graph of an [`EventNet`]: one state
/// per orbit of the reachable markings under a rate-preserving
/// automorphism, built **without materializing the full graph**.
///
/// # Why this equals full-then-lump bit for bit
///
/// The BFS interns every successor marking by its **canonical form** (the
/// lexicographically smallest member of its orbit) but stores the
/// **first-discovered** member as the orbit's representative, and it is
/// that representative's row that is explored.  Three facts make the
/// output coincide exactly with
/// [`Ctmc::quotient`]`(`[`MarkingGraph::orbit_partition`]`)`:
///
/// 1. **Numbering.** In the full BFS, a non-first member `σᵃ(x)` of an
///    orbit can never discover an orbit its first member `x` did not: its
///    row is the `σᵃ`-image of `x`'s row, hitting the same orbits, and
///    `x` is processed first.  So new orbits are first discovered only
///    from first members, in ascending transition order of their rows —
///    exactly the order this BFS visits (its representative *is* that
///    first member, by induction along the discovery sequence).  Orbit
///    ids here therefore equal the block ids of
///    [`MarkingGraph::orbit_partition`] (first appearance by full state
///    index).
/// 2. **Rates.** [`Ctmc::quotient`] reads each block's row off its first
///    member (every member agrees — that is lumpability), accumulating
///    edge rates per target block in CSR row order, which for the full
///    BFS is ascending enabled-transition order — the same scan order and
///    the same `f64` additions performed here.
/// 3. **Edges.** Both emit a block's targets in first-hit order of that
///    scan and drop intra-orbit edges (the quotient's self-loops).
///
/// # What the quotient preserves
///
/// Per-state quantities are only available per orbit: [`Self::enabled`]
/// lists the enabled transitions of the *representative*, and
/// [`Self::firing_rates_with`] returns orbit-aggregated totals — sums
/// over a transition set are the true full-chain sums **iff the set is
/// closed under the automorphism** (e.g. a whole TPN column, like the
/// last-column throughput set: the rotation permutes rows within a
/// column).  Uniform per-state probabilities come from [`Self::lift`].
#[derive(Debug, Clone)]
pub struct QuotientGraph {
    /// First-discovered member marking of every orbit (the block's
    /// representative, whose enabled set [`Self::enabled`] reports).
    pub reps: MarkingStore,
    /// The quotient CTMC: orbit-aggregated rates, intra-orbit edges
    /// dropped.
    pub ctmc: Ctmc,
    /// CSR layout of the representatives' enabled sets.
    enabled_ptr: Vec<u32>,
    enabled_idx: Vec<u32>,
    /// Quotient edge `e` aggregates the representative-row transitions
    /// `edge_trans[edge_ptr[e]..edge_ptr[e+1]]` (ascending within each
    /// edge) — the refill map of [`Self::ctmc_with_trans_rates`].
    edge_ptr: Vec<u32>,
    edge_trans: Vec<u32>,
    /// Orbit size (number of distinct markings) per quotient state.
    orbit_size: Vec<u32>,
}

/// Rotation-buffer budget of the optimized quotient path (bytes): above
/// this, `order · n_places` no longer fits a sane working set and the
/// per-firing canonicalization fallback runs instead (state budgets rule
/// such shapes out anyway — this guard only prevents a large up-front
/// allocation before the budget can fire).
const ROT_BUFFER_CAP: usize = 1 << 26;

/// Row-by-row accumulator of the quotient BFS outputs: aggregated CSR
/// rows, enabled sets, the edge→transitions refill map, and the
/// per-target scratch (all reused across rows, nothing allocated per
/// firing).
struct QuotientBuilder {
    csr: CsrBuilder,
    enabled_ptr: Vec<u32>,
    enabled_idx: Vec<u32>,
    edge_ptr: Vec<u32>,
    edge_trans: Vec<u32>,
    /// Aggregated rate into each target orbit of the current row.
    acc: Vec<f64>,
    /// Targets of the current row, in first-hit order.
    hit: Vec<u32>,
    /// Contributing transitions per target of the current row (reused
    /// allocations, drained at each row end).
    tbucket: Vec<Vec<u32>>,
    enabled_in_row: usize,
}

impl QuotientBuilder {
    fn new(expected_states: usize, nt: usize) -> Self {
        QuotientBuilder {
            csr: CsrBuilder::with_capacity(expected_states, expected_states * nt / 2),
            enabled_ptr: vec![0],
            enabled_idx: Vec::new(),
            edge_ptr: vec![0],
            edge_trans: Vec::new(),
            acc: Vec::new(),
            hit: Vec::new(),
            tbucket: Vec::new(),
            enabled_in_row: 0,
        }
    }

    /// Record that `t` is enabled in the current representative (every
    /// enabled transition is recorded, including intra-orbit firings that
    /// emit no quotient edge).
    #[inline]
    fn note_enabled(&mut self, t: usize) {
        self.enabled_idx.push(t as u32);
        self.enabled_in_row += 1;
    }

    /// Aggregate one firing of `t` from the current row (state `s`) into
    /// orbit `target`.  Intra-orbit firings are dropped — they are the
    /// quotient's self-loops.
    #[inline]
    fn fire(&mut self, s: u32, target: u32, t: usize, rate: f64) {
        if target == s {
            return;
        }
        if self.acc.len() <= target as usize {
            self.acc.resize(target as usize + 1, 0.0);
            self.tbucket.resize_with(target as usize + 1, Vec::new);
        }
        if self.acc[target as usize] == 0.0 {
            self.hit.push(target);
        }
        self.acc[target as usize] += rate;
        self.tbucket[target as usize].push(t as u32);
    }

    /// Close the current row, emitting its aggregated edges in first-hit
    /// order; `Err(Deadlock)` when no transition was enabled.
    fn end_row(&mut self) -> Result<(), MarkingError> {
        if self.enabled_in_row == 0 {
            return Err(MarkingError::Deadlock);
        }
        self.enabled_in_row = 0;
        for i in 0..self.hit.len() {
            let c = self.hit[i] as usize;
            self.csr.push(c, self.acc[c]);
            self.acc[c] = 0.0;
            self.edge_trans.append(&mut self.tbucket[c]);
            self.edge_ptr.push(self.edge_trans.len() as u32);
        }
        self.hit.clear();
        self.csr.end_row();
        self.enabled_ptr.push(self.enabled_idx.len() as u32);
        Ok(())
    }

    fn finish(self, reps: MarkingStore, orbit_size: Vec<u32>) -> QuotientGraph {
        QuotientGraph {
            reps,
            ctmc: self.csr.finish(),
            enabled_ptr: self.enabled_ptr,
            enabled_idx: self.enabled_idx,
            edge_ptr: self.edge_ptr,
            edge_trans: self.edge_trans,
            orbit_size,
        }
    }
}

impl QuotientGraph {
    /// Explore the reachable orbits of `net` under `sym` directly in the
    /// quotient.  `opts.max_states` bounds the **interned
    /// representatives** (the full chain is `Σ orbit sizes`, up to `m`
    /// times larger), so shapes whose full chain busts the budget can
    /// still be analysed.
    ///
    /// # Panics
    /// Panics unless `sym` is a rate-preserving automorphism of `net`
    /// ([`EventNet::symmetry_valid`]) — aggregated rates are only exact
    /// under that contract, so callers must gate on it (heterogeneous
    /// rate tables take the full-chain path instead).
    pub fn build(
        net: &EventNet,
        sym: &NetSymmetry,
        opts: MarkingOptions,
    ) -> Result<Self, MarkingError> {
        assert!(
            net.symmetry_valid(sym),
            "QuotientGraph::build needs a validated rate-preserving automorphism"
        );
        let canon = MarkingCanonicalizer::new(&sym.place_perm)
            .expect("symmetry_valid guarantees a permutation");
        // Same 31-bit id clamp as the plain BFS (the parallel staging
        // flags chunk-local keys in the top bit).
        let opts = MarkingOptions {
            max_states: opts.max_states.min(NEW_BIT as usize - 1),
            ..opts
        };
        let cap = opts.capacity.unwrap_or(1).max(1);
        if net.n_places() <= 8 && cap <= 255 {
            Self::build_packed(net, &canon, opts, cap as u8)
        } else if (canon.order() as usize).saturating_mul(net.n_places()) <= ROT_BUFFER_CAP {
            Self::build_arena_rowrot(net, sym, &canon, opts, i64::from(cap))
        } else {
            Self::build_arena(net, &canon, opts, i64::from(cap))
        }
    }

    /// Optimized generic path: one rotation buffer per **row** instead of
    /// a full canonicalization per **firing**.
    ///
    /// The m rotations `σᵃ(cur)` of the row's marking are materialized
    /// once; a successor's rotations then follow from the automorphism
    /// identity `σᵃ(cur − •t + t•) = σᵃ(cur) − •σᵃ(t) + σᵃ(t)•`, i.e. an
    /// `O(|•t| + |t•|)` delta per rotation (applied in place, undone after
    /// the firing) instead of an `O(n_places)` permutation — on the
    /// Theorem 2 chains that cuts the canonicalization work ~`n_places /
    /// (|•t|+|t•|)`-fold.  The lexicographic minimum over the rotations
    /// (the same representative [`MarkingCanonicalizer`] elects) is the
    /// interning key; the scan stops at the successor's period, which is
    /// also the orbit size.
    fn build_arena_rowrot(
        net: &EventNet,
        sym: &NetSymmetry,
        canon: &MarkingCanonicalizer,
        opts: MarkingOptions,
        cap: i64,
    ) -> Result<Self, MarkingError> {
        let width = net.n_places();
        let nt = net.n_transitions();
        let order = canon.order() as usize;
        let strict_safe = opts.capacity.is_none();

        // Powers of the transition permutation: `tp_pow[a·nt + t] = σᵃ(t)`.
        let mut tp_pow = vec![0u32; order * nt];
        for (t, slot) in tp_pow[..nt].iter_mut().enumerate() {
            *slot = t as u32;
        }
        for a in 1..order {
            for t in 0..nt {
                tp_pow[a * nt + t] = sym.trans_perm[tp_pow[(a - 1) * nt + t] as usize] as u32;
            }
        }

        // Seed: canonical key of the initial marking via the plain path.
        let mut scratch = CanonScratch::new(width);
        let mut reps: Vec<u8> = net.initial_marking();
        assert_eq!(reps.len(), width);
        let period = canon.canonicalize_into(&reps, &mut scratch);
        let mut keys: Vec<u8> = scratch.key().to_vec();
        let mut orbit_size: Vec<u32> = vec![period];
        let mut interner = OffsetInterner::with_capacity(1024);
        let (id0, fresh) = interner.intern(&[], width.max(1), &keys, 0);
        debug_assert!(fresh && id0 == 0);

        let mut out = QuotientBuilder::new(1024, nt);
        let mut cur = vec![0u8; width];
        // `rot[a·width..][..width]` holds `σᵃ(cur)`, transiently mutated
        // to `σᵃ(succ)` around each firing.
        let mut rot = vec![0u8; order * width];
        let mut frontier = 0usize;
        let mut n_states = 1usize;

        while frontier < n_states {
            let threads = bfs_threads(opts.threads, n_states - frontier);
            if threads > 1 {
                // Parallel level (module docs): each worker canonicalizes
                // its chunk with a private rotation buffer against the
                // frozen interner; the merge replays in chunk order.
                let hi = n_states;
                let chunk = (hi - frontier).div_ceil(threads);
                let stages: Vec<ChunkStage> = std::thread::scope(|scope| {
                    let (interner, keys, reps) = (&interner, keys.as_slice(), reps.as_slice());
                    let tp_pow = tp_pow.as_slice();
                    let handles: Vec<_> = (frontier..hi)
                        .step_by(chunk)
                        .map(|lo| {
                            scope.spawn(move || {
                                Self::explore_rowrot_chunk(
                                    net,
                                    sym,
                                    tp_pow,
                                    strict_safe,
                                    cap,
                                    reps,
                                    keys,
                                    interner,
                                    width,
                                    lo..(lo + chunk).min(hi),
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("quotient BFS worker panicked"))
                        .collect()
                });
                let mut base = frontier as u32;
                for stage in &stages {
                    Self::merge_quotient_chunk(
                        net,
                        stage,
                        base,
                        &mut interner,
                        &mut keys,
                        &mut reps,
                        &mut orbit_size,
                        width,
                        &mut n_states,
                        opts.max_states,
                        &mut out,
                    )?;
                    base += stage.row_ends.len() as u32;
                }
                frontier = hi;
                continue;
            }

            let s = frontier as u32;
            frontier += 1;
            cur.copy_from_slice(&reps[s as usize * width..(s as usize + 1) * width]);
            rot[..width].copy_from_slice(&cur);
            for a in 1..order {
                let (prev, rest) = rot.split_at_mut(a * width);
                let prev = &prev[(a - 1) * width..];
                let dst = &mut rest[..width];
                for (p, &img) in sym.place_perm.iter().enumerate() {
                    dst[img] = prev[p];
                }
            }

            'trans: for t in 0..nt {
                for &p in net.inputs(t) {
                    if cur[p] == 0 {
                        continue 'trans;
                    }
                }
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && i64::from(cur[p]) >= cap {
                            continue 'trans;
                        }
                    }
                }
                out.note_enabled(t);
                // rot[a] := σᵃ(succ), by the per-rotation firing delta.
                for a in 0..order {
                    let ta = tp_pow[a * nt + t] as usize;
                    let base = a * width;
                    for &p in net.inputs(ta) {
                        rot[base + p] -= 1;
                    }
                    for &p in net.outputs(ta) {
                        rot[base + p] += 1;
                    }
                }
                if strict_safe {
                    for &p in net.outputs(t) {
                        if rot[p] > 1 {
                            return Err(MarkingError::NotSafe { place: p });
                        }
                    }
                }
                // Lexicographic minimum over the orbit; the scan stops at
                // the successor's period (later rotations repeat).
                let (best, period) = lex_min_rotation(&rot, width, order);
                let probe_range = best * width..(best + 1) * width;
                let (id, is_new) =
                    interner.intern(&keys, width, &rot[probe_range.clone()], n_states as u32);
                if is_new {
                    if n_states >= opts.max_states {
                        return Err(MarkingError::TooManyStates(opts.max_states));
                    }
                    keys.extend_from_slice(&rot[probe_range]);
                    reps.extend_from_slice(&rot[..width]);
                    orbit_size.push(period);
                    n_states += 1;
                }
                out.fire(s, id, t, net.rates[t]);
                // Undo the delta: rot[a] is σᵃ(cur) again.
                for a in 0..order {
                    let ta = tp_pow[a * nt + t] as usize;
                    let base = a * width;
                    for &p in net.outputs(ta) {
                        rot[base + p] -= 1;
                    }
                    for &p in net.inputs(ta) {
                        rot[base + p] += 1;
                    }
                }
            }
            out.end_row()?;
        }

        Ok(out.finish(MarkingStore { width, data: reps }, orbit_size))
    }

    /// Worker of the parallel rotation-buffer quotient BFS: identical
    /// per-row math to the sequential scan — rotation materialization,
    /// per-rotation firing deltas, lexicographic-minimum election — with
    /// per-thread `rot` scratch, staging each enabled firing with its
    /// orbit target resolved against the level-frozen interner or
    /// deduplicated chunk-locally (key, representative and period
    /// recorded for the merge to intern).
    #[allow(clippy::too_many_arguments)]
    fn explore_rowrot_chunk(
        net: &EventNet,
        sym: &NetSymmetry,
        tp_pow: &[u32],
        strict_safe: bool,
        cap: i64,
        reps: &[u8],
        keys: &[u8],
        interner: &OffsetInterner,
        width: usize,
        states: std::ops::Range<usize>,
    ) -> ChunkStage {
        let nt = net.n_transitions();
        let order = tp_pow.len() / nt.max(1);
        let mut stage = ChunkStage::default();
        let mut local = OffsetInterner::with_capacity(64);
        let mut n_local = 0u32;
        let mut rot = vec![0u8; order * width];
        for s in states {
            let cur = &reps[s * width..(s + 1) * width];
            rot[..width].copy_from_slice(cur);
            for a in 1..order {
                let (prev, rest) = rot.split_at_mut(a * width);
                let prev = &prev[(a - 1) * width..];
                let dst = &mut rest[..width];
                for (p, &img) in sym.place_perm.iter().enumerate() {
                    dst[img] = prev[p];
                }
            }

            'trans: for t in 0..nt {
                for &p in net.inputs(t) {
                    if cur[p] == 0 {
                        continue 'trans;
                    }
                }
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && i64::from(cur[p]) >= cap {
                            continue 'trans;
                        }
                    }
                }
                for a in 0..order {
                    let ta = tp_pow[a * nt + t] as usize;
                    let base = a * width;
                    for &p in net.inputs(ta) {
                        rot[base + p] -= 1;
                    }
                    for &p in net.outputs(ta) {
                        rot[base + p] += 1;
                    }
                }
                if strict_safe {
                    for &p in net.outputs(t) {
                        if rot[p] > 1 {
                            stage.error = Some(MarkingError::NotSafe { place: p });
                            stage.row_ends.push(stage.firings.len() as u32);
                            return stage;
                        }
                    }
                }
                let (best, period) = lex_min_rotation(&rot, width, order);
                let probe = &rot[best * width..(best + 1) * width];
                let code = match interner.find(keys, width, probe) {
                    Some(id) => id,
                    None => {
                        let (li, fresh) = local.intern(&stage.new_keys, width, probe, n_local);
                        if fresh {
                            stage.new_keys.extend_from_slice(probe);
                            stage.new_reps.extend_from_slice(&rot[..width]);
                            stage.new_periods.push(period);
                            n_local += 1;
                        }
                        NEW_BIT | li
                    }
                };
                stage.firings.push((t as u32, code));
                for a in 0..order {
                    let ta = tp_pow[a * nt + t] as usize;
                    let base = a * width;
                    for &p in net.outputs(ta) {
                        rot[base + p] -= 1;
                    }
                    for &p in net.inputs(ta) {
                        rot[base + p] += 1;
                    }
                }
            }
            stage.row_ends.push(stage.firings.len() as u32);
        }
        stage
    }

    /// Merge one staged quotient chunk (rows of states `base..`) in chunk
    /// order: replay every enabled firing through the aggregating
    /// [`QuotientBuilder`] — the same first-hit edge order and `f64`
    /// addition sequence as the sequential scan — interning each
    /// chunk-local key (with its representative and orbit period) at
    /// first use, so new orbits receive exactly the sequential ids.
    #[allow(clippy::too_many_arguments)]
    fn merge_quotient_chunk(
        net: &EventNet,
        stage: &ChunkStage,
        base: u32,
        interner: &mut OffsetInterner,
        keys: &mut Vec<u8>,
        reps: &mut Vec<u8>,
        orbit_size: &mut Vec<u32>,
        width: usize,
        n_states: &mut usize,
        max_states: usize,
        out: &mut QuotientBuilder,
    ) -> Result<(), MarkingError> {
        let n_local = stage.new_periods.len();
        let mut local_ids = vec![EMPTY; n_local];
        let mut f = 0usize;
        for (row, &end) in stage.row_ends.iter().enumerate() {
            let s = base + row as u32;
            for &(t, code) in &stage.firings[f..end as usize] {
                let id = if code & NEW_BIT == 0 {
                    code
                } else {
                    let li = (code & !NEW_BIT) as usize;
                    if local_ids[li] == EMPTY {
                        let key = &stage.new_keys[li * width..(li + 1) * width];
                        let (id, is_new) = interner.intern(keys, width, key, *n_states as u32);
                        if is_new {
                            if *n_states >= max_states {
                                return Err(MarkingError::TooManyStates(max_states));
                            }
                            keys.extend_from_slice(key);
                            reps.extend_from_slice(&stage.new_reps[li * width..(li + 1) * width]);
                            orbit_size.push(stage.new_periods[li]);
                            *n_states += 1;
                        }
                        local_ids[li] = id;
                    }
                    local_ids[li]
                };
                out.note_enabled(t as usize);
                out.fire(s, id, t as usize, net.rates[t as usize]);
            }
            f = end as usize;
            if row + 1 == stage.row_ends.len() {
                if let Some(e) = &stage.error {
                    return Err(e.clone());
                }
            }
            out.end_row()?;
        }
        Ok(())
    }

    /// Generic fallback path (also the oracle the rotation-buffer path is
    /// tested against): byte markings in two arenas (canonical keys for
    /// the interner, first-discovered representatives for the rows), one
    /// full canonicalization per firing.  Used when the rotation buffer
    /// of [`Self::build_arena_rowrot`] would exceed [`ROT_BUFFER_CAP`].
    fn build_arena(
        net: &EventNet,
        canon: &MarkingCanonicalizer,
        opts: MarkingOptions,
        cap: i64,
    ) -> Result<Self, MarkingError> {
        let width = net.n_places();
        let nt = net.n_transitions();
        let strict_safe = opts.capacity.is_none();

        // Reused canonicalization scratch (one per BFS; parallel builds
        // would hold one per worker thread).
        let mut scratch = CanonScratch::new(width);

        let mut reps: Vec<u8> = net.initial_marking();
        assert_eq!(reps.len(), width);
        let period = canon.canonicalize_into(&reps, &mut scratch);
        let mut keys: Vec<u8> = scratch.key().to_vec();
        let mut orbit_size: Vec<u32> = vec![period];
        let mut interner = OffsetInterner::with_capacity(1024);
        let (id0, fresh) = interner.intern(&[], width.max(1), &keys, 0);
        debug_assert!(fresh && id0 == 0);

        let mut out = QuotientBuilder::new(1024, nt);
        let mut cur = vec![0u8; width];
        let mut succ = vec![0u8; width];
        let mut frontier = 0usize;
        let mut n_states = 1usize;

        while frontier < n_states {
            let s = frontier as u32;
            frontier += 1;
            cur.copy_from_slice(&reps[s as usize * width..(s as usize + 1) * width]);

            'trans: for t in 0..nt {
                for &p in net.inputs(t) {
                    if cur[p] == 0 {
                        continue 'trans;
                    }
                }
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && i64::from(cur[p]) >= cap {
                            continue 'trans;
                        }
                    }
                }
                out.note_enabled(t);
                succ.copy_from_slice(&cur);
                for &p in net.inputs(t) {
                    succ[p] -= 1;
                }
                for &p in net.outputs(t) {
                    succ[p] += 1;
                    if strict_safe && succ[p] > 1 {
                        return Err(MarkingError::NotSafe { place: p });
                    }
                }
                let period = canon.canonicalize_into(&succ, &mut scratch);
                let (id, is_new) = interner.intern(&keys, width, scratch.key(), n_states as u32);
                if is_new {
                    if n_states >= opts.max_states {
                        return Err(MarkingError::TooManyStates(opts.max_states));
                    }
                    keys.extend_from_slice(scratch.key());
                    reps.extend_from_slice(&succ);
                    orbit_size.push(period);
                    n_states += 1;
                }
                out.fire(s, id, t, net.rates[t]);
            }
            out.end_row()?;
        }

        Ok(out.finish(MarkingStore { width, data: reps }, orbit_size))
    }

    /// Packed path for ≤ 8 places: representatives and canonical keys are
    /// single `u64` words.
    fn build_packed(
        net: &EventNet,
        canon: &MarkingCanonicalizer,
        opts: MarkingOptions,
        cap: u8,
    ) -> Result<Self, MarkingError> {
        let width = net.n_places();
        let nt = net.n_transitions();
        let strict_safe = opts.capacity.is_none();
        let packed = PackedNet::build(net);

        let init = pack(&net.initial_marking());
        let (key0, period0) = canon.canonicalize_packed(init);
        let mut reps: Vec<u64> = vec![init];
        let mut orbit_size: Vec<u32> = vec![period0];
        let mut index: FxHashMap<u64, u32> = FxHashMap::default();
        index.insert(key0, 0);

        let mut out = QuotientBuilder::new(1024, nt);
        let mut frontier = 0usize;

        while frontier < reps.len() {
            let s = frontier as u32;
            let cur = reps[frontier];
            frontier += 1;

            'trans: for t in 0..nt {
                if !packed.enabled(t, cur) {
                    continue;
                }
                if !strict_safe {
                    for &p in net.outputs(t) {
                        let is_self = net.places[p].0 == net.places[p].1;
                        if !is_self && byte(cur, p) >= cap {
                            continue 'trans;
                        }
                    }
                }
                out.note_enabled(t);
                let next = packed.fire(t, cur);
                if strict_safe {
                    for &p in net.outputs(t) {
                        if byte(next, p) > 1 {
                            return Err(MarkingError::NotSafe { place: p });
                        }
                    }
                }
                let (key, period) = canon.canonicalize_packed(next);
                let id = match index.get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = reps.len() as u32;
                        if id as usize >= opts.max_states {
                            return Err(MarkingError::TooManyStates(opts.max_states));
                        }
                        reps.push(next);
                        orbit_size.push(period);
                        index.insert(key, id);
                        id
                    }
                };
                out.fire(s, id, t, net.rates[t]);
            }
            out.end_row()?;
        }

        let mut data = Vec::with_capacity(reps.len() * width);
        for &w in &reps {
            data.extend_from_slice(&w.to_le_bytes()[..width]);
        }
        Ok(out.finish(MarkingStore { width, data }, orbit_size))
    }

    /// Number of orbits (quotient states).
    pub fn n_states(&self) -> usize {
        self.ctmc.n_states()
    }

    /// Number of full-chain states represented: `Σ orbit sizes`.  Equals
    /// the full reachable count whenever the automorphism maps the
    /// reachable set onto itself (always the case when the full-chain
    /// [`MarkingGraph::orbit_partition`] accepts the same hint).
    pub fn full_states(&self) -> usize {
        self.orbit_size.iter().map(|&k| k as usize).sum()
    }

    /// Orbit size of every quotient state.
    pub fn orbit_sizes(&self) -> &[u32] {
        &self.orbit_size
    }

    /// Transitions fireable in the representative of orbit `s`
    /// (ascending).
    pub fn enabled(&self, s: usize) -> &[u32] {
        &self.enabled_idx[self.enabled_ptr[s] as usize..self.enabled_ptr[s + 1] as usize]
    }

    /// The uniform lift of this quotient: block sizes only (per-block
    /// member probability `π̂(B)/|B|`), no full-state map — see
    /// [`Lift::from_block_sizes`].
    pub fn lift(&self) -> Lift {
        Lift::from_block_sizes(self.orbit_size.clone())
    }

    /// The quotient re-rated from per-transition rates: edge `e` gets
    /// `Σ trans_rates[t]` over its contributing transitions, summed in
    /// the order the BFS aggregated them — bitwise identical to building
    /// the quotient of a net with those rates (which must themselves be
    /// orbit-invariant, the caller's gate), at `O(nnz)`.
    ///
    /// # Panics
    /// Panics if `trans_rates` is shorter than the net's transition count
    /// or a summed edge rate is non-positive.
    pub fn ctmc_with_trans_rates(&self, trans_rates: &[f64]) -> Ctmc {
        let rate: Vec<f64> = (0..self.ctmc.nnz())
            .map(|e| {
                self.edge_trans[self.edge_ptr[e] as usize..self.edge_ptr[e + 1] as usize]
                    .iter()
                    .map(|&t| trans_rates[t as usize])
                    .sum()
            })
            .collect();
        self.ctmc.with_rates(rate)
    }

    /// Orbit-aggregated stationary firing rates:
    /// `rate(t) = Σ_B π̂(B) λ_t [t enabled in rep(B)]`.  Entry `t` is
    /// **not** the full chain's per-transition rate (mass concentrates on
    /// the representatives' transitions), but the sum over any
    /// automorphism-closed transition set — a whole TPN column, the
    /// last-column throughput set — equals the full chain's sum exactly.
    pub fn firing_rates_with(&self, trans_rates: &[f64], pi: &[f64]) -> Vec<f64> {
        assert_eq!(pi.len(), self.n_states());
        let mut rates = vec![0.0f64; trans_rates.len()];
        for (s, &p) in pi.iter().enumerate() {
            for &t in self.enabled(s) {
                rates[t as usize] += p * trans_rates[t as usize];
            }
        }
        rates
    }

    /// Stationary distribution of the quotient, then the summed firing
    /// rate of an automorphism-closed transition set (e.g. the TPN's last
    /// column → system throughput).
    pub fn throughput_of(&self, net: &EventNet, transitions: &[usize]) -> f64 {
        self.throughput_with(&self.ctmc, &net.rates, transitions)
    }

    /// As [`QuotientGraph::throughput_of`] for a re-rated chain sharing
    /// this graph's structure (same op order as the owned-chain path, so
    /// refilled and cold solves agree bit for bit).
    pub fn throughput_with(&self, ctmc: &Ctmc, trans_rates: &[f64], transitions: &[usize]) -> f64 {
        let pi = ctmc.stationary();
        let rates = self.firing_rates_with(trans_rates, &pi);
        transitions.iter().map(|&t| rates[t]).sum()
    }
}

/// Pack a byte marking into a little-endian `u64` word.
fn pack(marking: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf[..marking.len()].copy_from_slice(marking);
    u64::from_le_bytes(buf)
}

/// Byte `p` of a packed marking.
#[inline]
fn byte(word: u64, p: usize) -> u8 {
    (word >> (8 * p)) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::comm_pattern;

    #[test]
    fn single_transition_self_loop() {
        // One transition with a marked self-loop: a Poisson clock.
        let net = EventNet::new(vec![2.0], vec![(0, 0, 1)]);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        assert_eq!(mg.n_states(), 1);
        let rates = mg.firing_rates(&net, &[1.0]);
        assert!((rates[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn two_transition_cycle() {
        // A ⇄ B with one token: alternating firings; each fires at rate
        // 1/(1/λa + 1/λb).
        let net = EventNet::new(vec![2.0, 3.0], vec![(0, 1, 1), (1, 0, 0)]);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        assert_eq!(mg.n_states(), 2);
        let pi = mg.ctmc.stationary();
        let rates = mg.firing_rates(&net, &pi);
        let expect = 1.0 / (1.0 / 2.0 + 1.0 / 3.0);
        assert!((rates[0] - expect).abs() < 1e-10, "{rates:?}");
        assert!((rates[1] - expect).abs() < 1e-10);
    }

    #[test]
    fn pattern_1x1_is_poisson() {
        let net = comm_pattern(1, 1, |_, _| 5.0);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        assert_eq!(mg.n_states(), 1);
        assert!((mg.throughput_of(&net, &[0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn unsafe_net_detected() {
        // Producer feeding a place with no consumer constraint forming
        // accumulation: t0 self-loop marked + place t0→t1, t1 needs also a
        // token that never comes back… simplest: t0 (free-running) feeds
        // t1 which is throttled by a slow self-loop — the middle place
        // accumulates.
        let net = EventNet::new(vec![1.0, 1.0], vec![(0, 0, 1), (0, 1, 0), (1, 1, 1)]);
        let err = MarkingGraph::build(&net, MarkingOptions::default()).unwrap_err();
        assert!(matches!(err, MarkingError::NotSafe { .. }), "{err}");
        // With a capacity it converges.
        let mg = MarkingGraph::build(
            &net,
            MarkingOptions {
                capacity: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(mg.n_states() > 2);
        // Throughput of the sink transition is throttled by both clocks.
        let rho = mg.throughput_of(&net, &[1]);
        assert!(rho < 1.0 && rho > 0.4, "rho {rho}");
    }

    #[test]
    fn capacity_increases_throughput_monotonically() {
        let net = EventNet::new(vec![1.0, 1.0], vec![(0, 0, 1), (0, 1, 0), (1, 1, 1)]);
        let mut last = 0.0;
        for cap in [1, 2, 4, 8, 16] {
            let mg = MarkingGraph::build(
                &net,
                MarkingOptions {
                    capacity: Some(cap),
                    ..Default::default()
                },
            )
            .unwrap();
            let rho = mg.throughput_of(&net, &[1]);
            assert!(rho >= last - 1e-12, "cap {cap}: {rho} < {last}");
            last = rho;
        }
        // Tandem of two rate-1 exponential servers with infinite buffer
        // saturates at 1; with cap 16 we should be close.
        assert!(last > 0.8, "cap-16 throughput {last}");
    }

    #[test]
    fn state_budget_enforced() {
        let net = comm_pattern(4, 5, |_, _| 1.0);
        let err = MarkingGraph::build(
            &net,
            MarkingOptions {
                max_states: 10,
                capacity: None,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, MarkingError::TooManyStates(10)));
    }

    /// The packed-u64 and arena paths must build identical graphs.
    #[test]
    fn packed_and_arena_paths_agree() {
        // 3 places, so `build` dispatches to the packed path; the arena
        // path is forced on the *same* net by calling `build_arena`
        // directly, and every artifact of the two graphs must match.
        let net = EventNet::new(vec![1.0, 2.0], vec![(0, 0, 1), (0, 1, 0), (1, 1, 1)]);
        for cap in [1u32, 3, 7] {
            let opts = MarkingOptions {
                max_states: 1 << 16,
                capacity: Some(cap),
                ..Default::default()
            };
            let fast = MarkingGraph::build(&net, opts).unwrap();
            // Force the arena path on the *same* net.
            let slow = MarkingGraph::build_arena(&net, opts, i64::from(cap)).unwrap();
            assert_eq!(fast.n_states(), slow.n_states(), "cap {cap}");
            assert_eq!(fast.ctmc.nnz(), slow.ctmc.nnz(), "cap {cap}");
            for s in 0..fast.n_states() {
                assert_eq!(
                    fast.states.get(s),
                    slow.states.get(s),
                    "cap {cap} state {s}"
                );
                assert_eq!(fast.enabled(s), slow.enabled(s), "cap {cap} state {s}");
                assert_eq!(
                    fast.ctmc.row_targets(s),
                    slow.ctmc.row_targets(s),
                    "cap {cap} state {s}"
                );
            }
            let a = fast.throughput_of(&net, &[1]);
            let b = slow.throughput_of(&net, &[1]);
            assert!((a - b).abs() < 1e-12, "cap {cap}: {a} vs {b}");
        }
    }

    /// The three quotient build paths (packed, rotation-buffer arena,
    /// per-firing arena) must elect identical graphs: same
    /// representatives, same orbit sizes, same aggregated chain, same
    /// enabled sets and refill maps.
    #[test]
    fn quotient_paths_agree() {
        use crate::net::comm_pattern;
        use repstream_petri::canon::MarkingCanonicalizer;

        // The uniform u×v pattern net carries a row-shift automorphism
        // (transition k ↦ k+1 mod n maps both one-port cycle families
        // onto themselves); 1×4 has 8 places, so `build` dispatches to
        // the packed path while the arena paths are forced directly.
        let (u, v) = (1usize, 4);
        let n = u * v;
        let net = comm_pattern(u, v, |_, _| 1.5);
        let trans_perm: Vec<usize> = (0..n).map(|k| (k + 1) % n).collect();
        // Places: sender cycle k → k+u at index k, receiver cycle k → k+v
        // at index n+k; the shift maps place k ↦ k+1 within each family.
        let place_perm: Vec<usize> = (0..2 * n)
            .map(|p| {
                if p < n {
                    (p + 1) % n
                } else {
                    n + (p + 1 - n) % n
                }
            })
            .collect();
        let sym = NetSymmetry {
            trans_perm,
            place_perm,
        };
        assert!(net.symmetry_valid(&sym));
        let canon = MarkingCanonicalizer::new(&sym.place_perm).unwrap();
        let opts = MarkingOptions::default();

        let packed = QuotientGraph::build(&net, &sym, opts).unwrap();
        let rowrot = QuotientGraph::build_arena_rowrot(&net, &sym, &canon, opts, 1).unwrap();
        let perfiring = QuotientGraph::build_arena(&net, &canon, opts, 1).unwrap();

        for (label, other) in [("rowrot", &rowrot), ("perfiring", &perfiring)] {
            assert_eq!(packed.n_states(), other.n_states(), "{label}");
            assert_eq!(packed.ctmc.nnz(), other.ctmc.nnz(), "{label}");
            assert_eq!(packed.orbit_sizes(), other.orbit_sizes(), "{label}");
            assert_eq!(packed.edge_ptr, other.edge_ptr, "{label}");
            assert_eq!(packed.edge_trans, other.edge_trans, "{label}");
            for s in 0..packed.n_states() {
                assert_eq!(packed.reps.get(s), other.reps.get(s), "{label} rep {s}");
                assert_eq!(packed.enabled(s), other.enabled(s), "{label} state {s}");
                assert_eq!(
                    packed.ctmc.row_targets(s),
                    other.ctmc.row_targets(s),
                    "{label} state {s}"
                );
                for (a, b) in packed.ctmc.row_rates(s).iter().zip(other.ctmc.row_rates(s)) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{label} state {s}");
                }
            }
        }
        // The quotient preserves the Theorem 4 closed form u·v·λ/(u+v−1).
        let all: Vec<usize> = (0..n).collect();
        let rho = packed.throughput_of(&net, &all);
        let expect = (u * v) as f64 * 1.5 / (u + v - 1) as f64;
        assert!((rho - expect).abs() < 1e-12, "rho {rho} vs {expect}");
    }

    /// Safe pattern nets route through the arena path (> 8 places) and
    /// must reproduce the Theorem 3 state count.
    #[test]
    fn arena_pattern_states_match_closed_form() {
        let net = comm_pattern(2, 3, |_, _| 1.0);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        assert_eq!(mg.n_states(), 12); // S(2,3) = C(4,1)·3
        assert_eq!(mg.states.width(), net.n_places());
        // Every stored marking is 0/1 (safe net).
        for m in mg.states.iter() {
            assert!(m.iter().all(|&b| b <= 1));
        }
    }
}
