//! Reachable-marking enumeration: event net → CTMC (Theorem 2).
//!
//! BFS over markings.  For *safe* nets (the Strict TPNs; resource cycles
//! are invariant-bounded to one token) markings stay 0/1 and the chain is
//! the paper's construction verbatim.  For nets with unbounded places (the
//! forward places of Overlap TPNs taken globally) a finite **capacity**
//! must be supplied: a transition is then blocked while one of its output
//! places is at capacity.  Capping adds back-pressure, so the computed
//! throughput under-estimates the infinite-buffer value and increases to it
//! as the capacity grows — the validation experiments sweep the capacity.

use crate::ctmc::Ctmc;
use crate::fxhash::FxHashMap;
use crate::net::EventNet;

/// Options for marking-graph construction.
#[derive(Debug, Clone, Copy)]
pub struct MarkingOptions {
    /// Hard cap on the number of states (construction fails beyond it).
    pub max_states: usize,
    /// Per-place token capacity.  `None` requires the net to be safe: the
    /// builder fails if any place would exceed one token.
    pub capacity: Option<u32>,
}

impl Default for MarkingOptions {
    fn default() -> Self {
        MarkingOptions {
            max_states: 1 << 20,
            capacity: None,
        }
    }
}

/// Failure modes of the marking BFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarkingError {
    /// The reachable set exceeded `max_states`.
    TooManyStates(usize),
    /// A place exceeded one token while `capacity` was `None`.
    NotSafe {
        /// The offending place.
        place: usize,
    },
    /// No transition is enabled in some reachable marking.
    Deadlock,
}

impl std::fmt::Display for MarkingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarkingError::TooManyStates(n) => write!(f, "marking graph exceeds {n} states"),
            MarkingError::NotSafe { place } => {
                write!(f, "net is not safe: place {place} exceeds one token (supply a capacity)")
            }
            MarkingError::Deadlock => write!(f, "reachable deadlock marking"),
        }
    }
}

impl std::error::Error for MarkingError {}

/// The reachability graph of an [`EventNet`] with exponential races.
#[derive(Debug, Clone)]
pub struct MarkingGraph {
    /// All reachable markings (tokens per place).
    pub states: Vec<Box<[u8]>>,
    /// The CTMC over those markings.
    pub ctmc: Ctmc,
    /// `enabled[s]` — transitions fireable in state `s` (sorted).
    pub enabled: Vec<Vec<usize>>,
}

impl MarkingGraph {
    /// Explore the reachable markings of `net`.
    pub fn build(net: &EventNet, opts: MarkingOptions) -> Result<Self, MarkingError> {
        let cap = opts.capacity.unwrap_or(1).max(1) as i32;
        let strict_safe = opts.capacity.is_none();

        let mut index: FxHashMap<Box<[u8]>, usize> = FxHashMap::default();
        let init: Box<[u8]> = net.initial_marking().into_boxed_slice();
        let mut states: Vec<Box<[u8]>> = vec![init.clone()];
        index.insert(init, 0);

        let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
        let mut enabled_per_state: Vec<Vec<usize>> = Vec::new();
        let mut frontier = 0usize;

        while frontier < states.len() {
            let s = frontier;
            frontier += 1;
            let marking = states[s].clone();

            let mut row = Vec::new();
            let mut enabled = Vec::new();
            for t in 0..net.n_transitions() {
                // Enabled: all inputs marked…
                if !net.inputs(t).iter().all(|&p| marking[p] > 0) {
                    continue;
                }
                // …and, under a capacity bound, all outputs below cap.
                // Self-loop places (input and output of t) net out to zero,
                // so they never block.  Without a capacity, the firing is
                // attempted and unsafety is reported as an error instead.
                if opts.capacity.is_some() {
                    let blocked = net.outputs(t).iter().any(|&p| {
                        let is_self = net.places[p].0 == net.places[p].1;
                        !is_self && i32::from(marking[p]) >= cap
                    });
                    if blocked {
                        continue;
                    }
                }
                enabled.push(t);
                // Successor marking.
                let mut next = marking.clone();
                for &p in net.inputs(t) {
                    next[p] -= 1;
                }
                for &p in net.outputs(t) {
                    next[p] += 1;
                    if strict_safe && next[p] > 1 {
                        return Err(MarkingError::NotSafe { place: p });
                    }
                }
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = states.len();
                        if id >= opts.max_states {
                            return Err(MarkingError::TooManyStates(opts.max_states));
                        }
                        states.push(next.clone());
                        index.insert(next, id);
                        id
                    }
                };
                row.push((id, net.rates[t]));
            }
            if enabled.is_empty() {
                return Err(MarkingError::Deadlock);
            }
            rows.push(row);
            enabled_per_state.push(enabled);
        }

        Ok(MarkingGraph {
            states,
            ctmc: Ctmc::new(rows),
            enabled: enabled_per_state,
        })
    }

    /// Stationary firing rate of every transition:
    /// `rate(t) = Σ_s π(s) λ_t [t enabled in s]`.
    pub fn firing_rates(&self, net: &EventNet, pi: &[f64]) -> Vec<f64> {
        assert_eq!(pi.len(), self.states.len());
        let mut rates = vec![0.0f64; net.n_transitions()];
        for (s, enabled) in self.enabled.iter().enumerate() {
            for &t in enabled {
                rates[t] += pi[s] * net.rates[t];
            }
        }
        rates
    }

    /// Convenience: stationary distribution, then summed firing rate of a
    /// set of transitions (e.g. the TPN's last column → throughput).
    pub fn throughput_of(&self, net: &EventNet, transitions: &[usize]) -> f64 {
        let pi = self.ctmc.stationary();
        let rates = self.firing_rates(net, &pi);
        transitions.iter().map(|&t| rates[t]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::comm_pattern;

    #[test]
    fn single_transition_self_loop() {
        // One transition with a marked self-loop: a Poisson clock.
        let net = EventNet::new(vec![2.0], vec![(0, 0, 1)]);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        assert_eq!(mg.states.len(), 1);
        let rates = mg.firing_rates(&net, &[1.0]);
        assert!((rates[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn two_transition_cycle() {
        // A ⇄ B with one token: alternating firings; each fires at rate
        // 1/(1/λa + 1/λb).
        let net = EventNet::new(vec![2.0, 3.0], vec![(0, 1, 1), (1, 0, 0)]);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        assert_eq!(mg.states.len(), 2);
        let pi = mg.ctmc.stationary();
        let rates = mg.firing_rates(&net, &pi);
        let expect = 1.0 / (1.0 / 2.0 + 1.0 / 3.0);
        assert!((rates[0] - expect).abs() < 1e-10, "{rates:?}");
        assert!((rates[1] - expect).abs() < 1e-10);
    }

    #[test]
    fn pattern_1x1_is_poisson() {
        let net = comm_pattern(1, 1, |_, _| 5.0);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        assert_eq!(mg.states.len(), 1);
        assert!((mg.throughput_of(&net, &[0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn unsafe_net_detected() {
        // Producer feeding a place with no consumer constraint forming
        // accumulation: t0 self-loop marked + place t0→t1, t1 needs also a
        // token that never comes back… simplest: t0 (free-running) feeds
        // t1 which is throttled by a slow self-loop — the middle place
        // accumulates.
        let net = EventNet::new(
            vec![1.0, 1.0],
            vec![(0, 0, 1), (0, 1, 0), (1, 1, 1)],
        );
        let err = MarkingGraph::build(&net, MarkingOptions::default()).unwrap_err();
        assert!(matches!(err, MarkingError::NotSafe { .. }), "{err}");
        // With a capacity it converges.
        let mg = MarkingGraph::build(
            &net,
            MarkingOptions {
                capacity: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(mg.states.len() > 2);
        // Throughput of the sink transition is throttled by both clocks.
        let rho = mg.throughput_of(&net, &[1]);
        assert!(rho < 1.0 && rho > 0.4, "rho {rho}");
    }

    #[test]
    fn capacity_increases_throughput_monotonically() {
        let net = EventNet::new(
            vec![1.0, 1.0],
            vec![(0, 0, 1), (0, 1, 0), (1, 1, 1)],
        );
        let mut last = 0.0;
        for cap in [1, 2, 4, 8, 16] {
            let mg = MarkingGraph::build(
                &net,
                MarkingOptions {
                    capacity: Some(cap),
                    ..Default::default()
                },
            )
            .unwrap();
            let rho = mg.throughput_of(&net, &[1]);
            assert!(rho >= last - 1e-12, "cap {cap}: {rho} < {last}");
            last = rho;
        }
        // Tandem of two rate-1 exponential servers with infinite buffer
        // saturates at 1; with cap 16 we should be close.
        assert!(last > 0.8, "cap-16 throughput {last}");
    }

    #[test]
    fn state_budget_enforced() {
        let net = comm_pattern(4, 5, |_, _| 1.0);
        let err = MarkingGraph::build(
            &net,
            MarkingOptions {
                max_states: 10,
                capacity: None,
            },
        )
        .unwrap_err();
        assert!(matches!(err, MarkingError::TooManyStates(10)));
    }
}
