//! Krylov and over-relaxation stationary solvers: restarted GMRES on the
//! singular system `πQ = 0`, and SOR on the balance equations.
//!
//! # Restarted GMRES on `πQ = 0`
//!
//! The stationary distribution is the left null vector of the generator:
//! `πQ = 0`, `Σπ = 1`.  We treat it as the linear system `A x = 0` with
//! the row-vector operator `A : x ↦ xQ` — a *gather* over the incoming
//! CSR (the exact structure of the power sweep, and chunk-parallel the
//! same way, so matvecs are bitwise deterministic for any thread count).
//!
//! The system is singular (rank `n − 1` for an irreducible chain) with
//! right-hand side zero, so plain GMRES would converge to the useless
//! `x = 0`.  Two standard devices make it well behaved:
//!
//! * **start on the simplex** — `x₀ = 1/n`, so the initial residual
//!   `r₀ = −x₀Q` is nonzero and lies in the range of `A` (every `xQ` has
//!   zero component sum, because rows of `Q` sum to zero).  The Krylov
//!   corrections therefore stay in the zero-sum subspace, where `A` is
//!   nonsingular, and `Σx = 1` is preserved up to rounding;
//! * **renormalized deflation** — after every restart the iterate is
//!   rescaled to unit sum, deflating the slow drift along the null
//!   direction that floating-point accumulation would otherwise feed.
//!
//! Each `GMRES_RESTART`-deep cycle runs the Arnoldi recurrence with
//! modified Gram–Schmidt, maintains the QR factorization of the small
//! Hessenberg matrix with Givens rotations (so the least-squares
//! residual norm is available *per step* for free), solves the
//! triangular system, and applies the correction.  All workspaces — the
//! Krylov basis, the Hessenberg columns, the rotation pairs, the
//! right-hand side — are allocated once and reused across restarts.
//!
//! Convergence is judged on the true max-norm stationarity residual
//! `‖xQ‖_∞` (the same contract [`Ctmc::stationary_solve`] verifies), not
//! on the least-squares estimate alone.
//!
//! # Jacobi right-scaling
//!
//! With [`Precond::Jacobi`] the Krylov recurrence runs on the scaled
//! operator `A′ : x ↦ (xQ)D⁻¹`, `D = diag(max(exit_j, →1))` — one extra
//! multiply per matvec entry, applied after the same deterministic
//! gather, so matvecs stay bitwise deterministic for any thread count.
//! Exit rates *are* the diagonal magnitudes of `Q` (`q_jj = −exit_j`),
//! so this equalizes column norms exactly where stiff rate tables spread
//! them; absorbing states (exit 0) keep scale 1, preserving the
//! division-free NaN story.  Because `D` is invertible, `x(QD⁻¹) = 0 ⇔
//! xQ = 0`: the iterate needs no untransforming and the final acceptance
//! still verifies the *unpreconditioned* residual.  Two care points:
//!
//! * **stopping** — the in-cycle least-squares estimate and the restart
//!   `beta` live in the scaled norm, so they are compared against
//!   `tol / max(D)` (since `‖xQ‖_∞ ≤ max(D)·‖(xQ)D⁻¹‖₂`), keeping the
//!   certificate sound in the caller's unscaled contract;
//! * **deflation** — scaled residuals no longer have exactly zero
//!   component sum, so corrections can drift off the simplex; the
//!   per-restart renormalization (already required for floating-point
//!   drift) absorbs exactly this component, since the drift direction is
//!   the null direction the deflation removes.
//!
//! # SOR
//!
//! [`Ctmc::stationary_sor`] is the Gauss–Seidel sweep of
//! [`Ctmc::stationary_gauss_seidel`] with an over-relaxation blend:
//!
//! ```text
//!   π_j ← (1 − ω)·π_j + ω·( Σ_{i→j} π_i r_ij ) / exit_j
//! ```
//!
//! With `ω = 1` it *is* Gauss–Seidel; [`SOR_OMEGA`] (1.2) accelerates
//! the sparse, shallow marking chains measurably.  Over-relaxation is
//! not unconditionally convergent on this fixed-point form, so the sweep
//! watches its own per-sweep change and halves `ω` toward 1 whenever the
//! change stalls ([`SOR_ADAPT_PERIOD`]) — worst case it degrades to
//! plain Gauss–Seidel instead of oscillating.  It is the measured
//! primary of the top-end plan (SOR → GMRES → power): on the 6×7
//! quotient it converges in ~10× fewer sweeps than power takes
//! iterations, while GMRES pays O(restart · n) orthogonalization per
//! matvec and serves as the robust residual-verified fallback.

use crate::ctmc::{solver_checkpoint, ungoverned, Ctmc, Precond};
use crate::govern::{Budget, Interrupt};

/// Arnoldi depth per GMRES cycle.  Deep enough that the million-state
/// quotient chains converge in a handful of restarts; shallow enough
/// that the basis (`(m+1)·n` doubles) stays far below the chain itself.
pub const GMRES_RESTART: usize = 40;

/// Matvec budget of one [`Ctmc::stationary_solve`] GMRES attempt —
/// roughly 250 restarts, far past anything a converging chain needs, and
/// still cheap next to power's 200 000-sweep budget.
pub const GMRES_MAX_MATVECS: usize = 10_000;

/// Over-relaxation factor the automatic policy uses for SOR.
pub const SOR_OMEGA: f64 = 1.2;

/// Sweeps between stall checks of the adaptive SOR damping: when the
/// max relative change has not contracted since the previous checkpoint,
/// the over-relaxation is halved toward 1 (plain Gauss–Seidel, which is
/// convergent on these chains).
pub const SOR_ADAPT_PERIOD: usize = 16;

/// Treat a norm at or below this as exact zero (breakdown guard).
const TINY: f64 = 1e-300;

impl Ctmc {
    /// Stationary distribution by restarted GMRES on `πQ = 0` (see the
    /// module docs of [`crate::krylov`]).
    ///
    /// `tol` is the **absolute max-norm stationarity residual** to reach
    /// (`‖πQ‖_∞ ≤ tol`); iteration stops after `max_matvecs` operator
    /// applications otherwise.  Unlike the relaxation solvers this never
    /// divides by exit rates, so zero-exit (absorbing) states are handled
    /// without NaNs.  The result is clamped to the simplex (tiny negative
    /// overshoot zeroed) and normalized to unit sum.
    pub fn stationary_gmres(&self, tol: f64, max_matvecs: usize) -> Vec<f64> {
        self.stationary_gmres_pc(Precond::None, tol, max_matvecs)
    }

    /// [`Ctmc::stationary_gmres`] with an explicit diagonal scaling —
    /// [`Precond::Jacobi`] is what the automatic policy's `gmres` entry
    /// runs (see the module docs on right-scaling).  `tol` remains the
    /// **unpreconditioned** max-norm residual to certify; the scaling
    /// only changes the operator iterated on, never the contract.
    pub fn stationary_gmres_pc(&self, precond: Precond, tol: f64, max_matvecs: usize) -> Vec<f64> {
        ungoverned(self.gmres_restarted(GMRES_RESTART, tol, max_matvecs, precond, None)).0
    }

    /// [`Ctmc::stationary_gmres_pc`] with the standard budget, returning
    /// the matvec count — what [`Ctmc::stationary_solve`] runs.
    pub(crate) fn gmres_counted(&self, target: f64, precond: Precond) -> (Vec<f64>, usize) {
        ungoverned(self.gmres_restarted(GMRES_RESTART, target, GMRES_MAX_MATVECS, precond, None))
    }

    /// [`Ctmc::gmres_counted`] under a [`Budget`], checked once per
    /// restart (identical arithmetic — a check never changes the
    /// iteration, only whether it continues).
    pub(crate) fn gmres_counted_governed(
        &self,
        target: f64,
        precond: Precond,
        budget: &Budget,
    ) -> Result<(Vec<f64>, usize), Interrupt> {
        self.gmres_restarted(
            GMRES_RESTART,
            target,
            GMRES_MAX_MATVECS,
            precond,
            Some(budget),
        )
    }

    /// Restarted GMRES with explicit Arnoldi depth.  Returns the iterate
    /// and the number of operator applications (matvecs) spent.  With a
    /// budget, one cooperative checkpoint runs per restart cycle; `None`
    /// never checks (and thus never errors).
    fn gmres_restarted(
        &self,
        restart: usize,
        tol: f64,
        max_matvecs: usize,
        precond: Precond,
        budget: Option<&Budget>,
    ) -> Result<(Vec<f64>, usize), Interrupt> {
        let n = self.n_states();
        assert!(n > 0);
        if n == 1 {
            return Ok((vec![1.0], 0));
        }
        let m = restart.clamp(2, n.max(2));
        let mut x = vec![1.0 / n as f64; n];
        // Jacobi right-scaling: invd[j] multiplies entry j after every
        // gather (empty = identity, so the plain path is untouched, not
        // merely multiplied by 1.0).  Absorbing states keep scale 1.
        let invd: Vec<f64> = match precond {
            Precond::None => Vec::new(),
            Precond::Jacobi => (0..n)
                .map(|j| {
                    let d = self.exit_rate(j);
                    if d > 0.0 {
                        1.0 / d
                    } else {
                        1.0
                    }
                })
                .collect(),
        };
        // Scaled-norm stopping threshold: ‖xQ‖_∞ ≤ max(D)·‖(xQ)D⁻¹‖₂,
        // so certifying `tol` through the scaled operator needs the
        // estimates under `tol / max(D)` (max(D) = 1 unpreconditioned).
        let max_d = invd.iter().fold(1.0f64, |acc, &s| acc.max(1.0 / s));
        let tol_pc = tol / max_d;
        // Workspaces, allocated once and reused across restarts.
        let mut v = vec![0.0f64; (m + 1) * n]; // Krylov basis, rows of n
        let mut h = vec![0.0f64; m * (m + 1)]; // Hessenberg, column-major
        let mut cs = vec![0.0f64; m];
        let mut sn = vec![0.0f64; m];
        let mut g = vec![0.0f64; m + 1];
        let mut y = vec![0.0f64; m];
        let mut matvecs = 0usize;

        while matvecs < max_matvecs {
            if let Some(b) = budget {
                solver_checkpoint(b, n, matvecs)?;
            }
            // r0 = −(xQ)D⁻¹ into the first basis slot (D = I when plain).
            {
                let v0 = &mut v[..n];
                self.apply_q(&x, v0);
                matvecs += 1;
                if invd.is_empty() {
                    for val in v0.iter_mut() {
                        *val = -*val;
                    }
                } else {
                    for (val, &s) in v0.iter_mut().zip(&invd) {
                        *val = -*val * s;
                    }
                }
            }
            let beta = norm2(&v[..n]);
            // A 2-norm bounds the max-norm, so a tiny beta certifies the
            // residual contract directly (through `max(D)` when scaled).
            if beta <= tol_pc.max(TINY) {
                break;
            }
            let inv_beta = 1.0 / beta;
            for val in v[..n].iter_mut() {
                *val *= inv_beta;
            }
            g[0] = beta;
            for gi in g[1..].iter_mut() {
                *gi = 0.0;
            }

            // Arnoldi with modified Gram–Schmidt + Givens least squares.
            let mut k = 0usize; // columns completed this cycle
            for j in 0..m {
                let (basis, rest) = v.split_at_mut((j + 1) * n);
                let w = &mut rest[..n];
                self.apply_q(&basis[j * n..(j + 1) * n], w);
                matvecs += 1;
                if !invd.is_empty() {
                    for (wv, &s) in w.iter_mut().zip(&invd) {
                        *wv *= s;
                    }
                }
                let col = &mut h[j * (m + 1)..(j + 1) * (m + 1)];
                for (i, hij) in col.iter_mut().enumerate().take(j + 1) {
                    let vi = &basis[i * n..(i + 1) * n];
                    let d = dot(w, vi);
                    *hij = d;
                    for (wv, &bv) in w.iter_mut().zip(vi) {
                        *wv -= d * bv;
                    }
                }
                let hnext = norm2(w);
                col[j + 1] = hnext;
                // Previous rotations on the new column, then a new
                // rotation zeroing the subdiagonal entry.
                for i in 0..j {
                    let (a, b) = (col[i], col[i + 1]);
                    col[i] = cs[i] * a + sn[i] * b;
                    col[i + 1] = -sn[i] * a + cs[i] * b;
                }
                let (a, b) = (col[j], col[j + 1]);
                let r = (a * a + b * b).sqrt();
                if r <= TINY {
                    (cs[j], sn[j]) = (1.0, 0.0);
                } else {
                    (cs[j], sn[j]) = (a / r, b / r);
                }
                col[j] = cs[j] * a + sn[j] * b;
                col[j + 1] = 0.0;
                let gj = g[j];
                g[j] = cs[j] * gj;
                g[j + 1] = -sn[j] * gj;
                k = j + 1;

                let happy = hnext <= TINY; // invariant subspace reached
                if !happy {
                    let inv = 1.0 / hnext;
                    for wv in w.iter_mut() {
                        *wv *= inv;
                    }
                }
                // |g[j+1]| is the least-squares residual 2-norm (in the
                // scaled norm when preconditioned); leave the cycle
                // early once it is safely under target (the true
                // unpreconditioned residual is re-verified below).
                if happy || g[j + 1].abs() <= 0.25 * tol_pc || matvecs >= max_matvecs {
                    break;
                }
            }

            // Back-substitute R y = g and apply the correction x += V y.
            for i in (0..k).rev() {
                let mut acc = g[i];
                for (jj, &yjj) in y.iter().enumerate().take(k).skip(i + 1) {
                    acc -= h[jj * (m + 1) + i] * yjj;
                }
                let d = h[i * (m + 1) + i];
                y[i] = if d.abs() > TINY { acc / d } else { 0.0 };
            }
            for (i, &yi) in y.iter().enumerate().take(k) {
                if yi != 0.0 {
                    for (xv, &bv) in x.iter_mut().zip(&v[i * n..(i + 1) * n]) {
                        *xv += yi * bv;
                    }
                }
            }

            // Renormalized deflation: plain corrections live in the
            // zero-sum subspace, so this removes only floating-point
            // drift along the null direction; scaled corrections carry a
            // genuine (still null-direction) sum component, and this
            // same rescale is what absorbs it (see the module docs).
            // Either way, renormalizing every restart is what keeps the
            // iteration anchored on the simplex.
            let total: f64 = x.iter().sum();
            if total.is_finite() && total.abs() > TINY {
                let inv = 1.0 / total;
                for xv in x.iter_mut() {
                    *xv *= inv;
                }
            } else {
                // Catastrophic drift (defective chain): restart cold.
                for xv in x.iter_mut() {
                    *xv = 1.0 / n as f64;
                }
            }
            if self.stationarity_residual(&x) <= tol {
                break;
            }
        }

        // Near convergence any negative component is rounding-level
        // overshoot; clamp and renormalize so callers get a distribution.
        for xv in x.iter_mut() {
            if *xv < 0.0 {
                *xv = 0.0;
            }
        }
        let total: f64 = x.iter().sum();
        if total.is_finite() && total > TINY {
            let inv = 1.0 / total;
            for xv in x.iter_mut() {
                *xv *= inv;
            }
        }
        Ok((x, matvecs))
    }

    /// Stationary distribution by successive over-relaxation of the
    /// balance equations (Gauss–Seidel with blend factor `omega`; see
    /// the module docs of [`crate::krylov`]).
    ///
    /// Stops when the max relative change of a sweep drops below `tol` or
    /// after `max_sweeps`.  Over-relaxation (`omega > 1`) is not
    /// unconditionally convergent on these fixed-point sweeps: when the
    /// per-sweep change stalls instead of contracting, `omega` is halved
    /// toward 1 every [`SOR_ADAPT_PERIOD`] sweeps, so the iteration
    /// degrades gracefully to plain Gauss–Seidel rather than oscillating
    /// forever.  The adaptation is a pure function of the iteration
    /// history — bitwise deterministic.  Like Gauss–Seidel this divides
    /// by exit rates, so chains with absorbing states produce NaNs —
    /// callers that cannot tolerate a miss should verify
    /// [`Ctmc::stationarity_residual`] and fall back, as
    /// [`Ctmc::stationary_solve`] does.
    pub fn stationary_sor(&self, omega: f64, tol: f64, max_sweeps: usize) -> Vec<f64> {
        self.sor_counted(omega, tol, max_sweeps).0
    }

    /// [`Ctmc::stationary_sor`] plus the number of sweeps spent.
    pub(crate) fn sor_counted(&self, omega: f64, tol: f64, max_sweeps: usize) -> (Vec<f64>, usize) {
        ungoverned(self.sor_budgeted(omega, tol, max_sweeps, None))
    }

    /// [`Ctmc::sor_counted`] under a [`Budget`], checked once per
    /// [`SOR_ADAPT_PERIOD`] checkpoint.
    pub(crate) fn sor_counted_governed(
        &self,
        omega: f64,
        tol: f64,
        max_sweeps: usize,
        budget: &Budget,
    ) -> Result<(Vec<f64>, usize), Interrupt> {
        self.sor_budgeted(omega, tol, max_sweeps, Some(budget))
    }

    /// The SOR sweep loop; `budget` adds a cooperative checkpoint at
    /// each stall check (`None` never checks, hence never errors).
    fn sor_budgeted(
        &self,
        omega: f64,
        tol: f64,
        max_sweeps: usize,
        budget: Option<&Budget>,
    ) -> Result<(Vec<f64>, usize), Interrupt> {
        let n = self.n_states();
        assert!(n > 0);
        if n == 1 {
            return Ok((vec![1.0], 0));
        }
        let mut omega = omega;
        let mut pi = vec![1.0 / n as f64; n];
        let mut sweeps = 0usize;
        // Stall detection: the change recorded at the last checkpoint.
        let mut checkpoint_change = f64::INFINITY;
        for it in 0..max_sweeps {
            sweeps = it + 1;
            let mut max_rel = 0.0f64;
            for j in 0..n {
                let (src, rates) = self.in_row(j);
                let mut acc = 0.0;
                for (&i, &r) in src.iter().zip(rates) {
                    acc += pi[i as usize] * r;
                }
                let gs = acc / self.exit_rate(j);
                let old = pi[j];
                let new = old + omega * (gs - old);
                pi[j] = new;
                let scale = old.abs().max(new.abs());
                if scale > 0.0 {
                    max_rel = max_rel.max((new - old).abs() / scale);
                }
            }
            // Renormalize every sweep, matching Gauss–Seidel (drift
            // guard; also what makes `tol` a relative criterion).
            let total: f64 = pi.iter().sum();
            if total > 0.0 && total.is_finite() {
                let inv = 1.0 / total;
                for v in pi.iter_mut() {
                    *v *= inv;
                }
            }
            if max_rel < tol {
                break;
            }
            if sweeps.is_multiple_of(SOR_ADAPT_PERIOD) {
                if let Some(b) = budget {
                    solver_checkpoint(b, n, sweeps)?;
                }
                // Not contracting since the last checkpoint (oscillation
                // or divergence from over-relaxation): damp toward 1.
                // Slow-but-steady contraction is left alone — only a
                // near-flat or growing change trips the damping.
                if omega > 1.0 && (!max_rel.is_finite() || max_rel >= 0.98 * checkpoint_change) {
                    omega = 1.0 + (omega - 1.0) * 0.5;
                    if omega < 1.0 + 1e-3 {
                        omega = 1.0;
                    }
                }
                checkpoint_change = max_rel;
            }
        }
        Ok((pi, sweeps))
    }
}

/// Sequential dot product (deterministic reduction order).
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm with a sequential reduction.
fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(lam: f64, mu: f64) -> Ctmc {
        Ctmc::new(vec![vec![(1, lam)], vec![(0, mu)]])
    }

    #[test]
    fn gmres_two_state_closed_form() {
        let c = two_state(2.0, 3.0);
        let pi = c.stationary_gmres(1e-12, 1_000);
        assert!((pi[0] - 0.6).abs() < 1e-10, "{pi:?}");
        assert!((pi[1] - 0.4).abs() < 1e-10, "{pi:?}");
        assert!(c.stationarity_residual(&pi) < 1e-11);
    }

    #[test]
    fn sor_two_state_closed_form() {
        let c = two_state(2.0, 3.0);
        let pi = c.stationary_sor(SOR_OMEGA, 1e-14, 10_000);
        assert!((pi[0] - 0.6).abs() < 1e-10, "{pi:?}");
        assert!(c.stationarity_residual(&pi) < 1e-10);
    }

    #[test]
    fn gmres_uniform_ring() {
        let n = 17;
        let rows: Vec<Vec<(usize, f64)>> = (0..n).map(|i| vec![((i + 1) % n, 3.0)]).collect();
        let c = Ctmc::new(rows);
        let pi = c.stationary_gmres(1e-12, 5_000);
        for &p in &pi {
            assert!((p - 1.0 / n as f64).abs() < 1e-10, "{pi:?}");
        }
    }

    #[test]
    fn gmres_single_state() {
        let c = Ctmc::new(vec![Vec::new()]);
        assert_eq!(c.stationary_gmres(1e-12, 10), vec![1.0]);
        assert_eq!(c.stationary_sor(SOR_OMEGA, 1e-12, 10), vec![1.0]);
    }

    #[test]
    fn jacobi_gmres_matches_plain_on_stiff_chain() {
        // Rates spread over 6 decades: exactly the column-scale spread
        // Jacobi equalizes.  Both variants must land on the same
        // stationary vector to far below the acceptance contract.
        let rows = vec![
            vec![(1, 1.0e3), (2, 5.0e-2)],
            vec![(2, 7.0e2), (0, 1.0e-3)],
            vec![(0, 2.0e-1), (3, 9.0e2)],
            vec![(0, 4.0e-3), (1, 6.0e1)],
        ];
        let c = Ctmc::new(rows);
        let plain = c.stationary_gmres_pc(Precond::None, 1e-12, 10_000);
        let pc = c.stationary_gmres_pc(Precond::Jacobi, 1e-12, 10_000);
        for (a, b) in plain.iter().zip(&pc) {
            assert!((a - b).abs() < 1e-10, "plain {plain:?} vs jacobi {pc:?}");
        }
        assert!(c.stationarity_residual(&pc) < 1e-11);
    }

    #[test]
    fn jacobi_gmres_handles_absorbing_chain() {
        // Absorbing state keeps scale 1: no division by a zero exit.
        let rows: Vec<Vec<(usize, f64)>> = (0..8)
            .map(|i| {
                if i + 1 < 8 {
                    vec![(i + 1, 2.0)]
                } else {
                    Vec::new()
                }
            })
            .collect();
        let c = Ctmc::new(rows);
        let pi = c.stationary_gmres_pc(Precond::Jacobi, 1e-12, 5_000);
        assert!(pi.iter().all(|v| v.is_finite()), "{pi:?}");
        assert!((pi[7] - 1.0).abs() < 1e-9, "mass {} at absorber", pi[7]);
    }

    #[test]
    fn gmres_handles_absorbing_chain() {
        // One absorbing state: relaxation NaNs out, GMRES must not.
        let n = 12;
        let rows: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|i| {
                if i + 1 < n {
                    vec![(i + 1, 1.0)]
                } else {
                    Vec::new()
                }
            })
            .collect();
        let c = Ctmc::new(rows);
        let pi = c.stationary_gmres(1e-12, 5_000);
        assert!(pi.iter().all(|v| v.is_finite()), "{pi:?}");
        assert!(
            (pi[n - 1] - 1.0).abs() < 1e-9,
            "mass {} at absorber",
            pi[n - 1]
        );
    }
}
