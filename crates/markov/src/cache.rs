//! Structure-keyed reuse of marking-graph chains.
//!
//! Candidate mappings explored by a search differ in *rates* far more
//! often than in *structure*: every mapping whose shape (replication
//! vector) matches a previously scored one induces the **same** reachable
//! marking graph — only the CSR rate payload changes.  The expensive parts
//! of a Theorem 2/3 evaluation are exactly the structural ones: the
//! marking BFS + interner, the orbit propagation of the row-rotation
//! symmetry, and (for patterns) the reachability enumeration.
//!
//! [`ChainCache`] keys those structures canonically — [`TpnSignature`]
//! for the global Strict chain, the coprime `(u′, v′)` dimensions for
//! Theorem 3 pattern chains — and **refills** the cached CSR on a hit
//! ([`MarkingGraph::ctmc_with_trans_rates`], `O(nnz)`), skipping the BFS
//! entirely.  Strict chains cache **two** structures per signature, each
//! built lazily by the first candidate that needs it: the direct
//! symmetry-reduced quotient ([`QuotientGraph`], served to every
//! orbit-invariant candidate — the full graph is never materialized for
//! those) and the full marking graph (heterogeneous candidates, `m = 1`,
//! or lumping off).  Cached results are **bitwise identical** to cold
//! solves:
//! the refilled chain has byte-for-byte the arrays a fresh build would
//! produce, and every solver is deterministic in its inputs.  The
//! equivalence property tests of `repstream-engine` pin this contract.
//!
//! Budget semantics: `max_states` bounds the *structure build* on a miss.
//! A hit reuses the cached structure without re-checking it against the
//! (possibly smaller) budget of the current call — budgets are per
//! deployment, not per candidate.

use crate::ctmc::{Precond, Solver, SolverChoice};
use crate::fxhash::{FxHashMap, FxHasher};
use crate::govern::Budget;
use crate::marking::{
    ArenaCompression, ArenaStats, MarkingError, MarkingGraph, MarkingOptions, QuotientGraph,
};
use crate::net::{comm_pattern, rates_orbit_invariant, EventNet, NetSymmetry};
use repstream_petri::shape::{gcd, ExecModel, MappingShape, ResourceTable};
use repstream_petri::tpn::{Tpn, TpnSignature};
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Hit/miss counters of a [`ChainCache`] (reported by search drivers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Pattern-chain solves served from a cached structure.
    pub pattern_hits: usize,
    /// Pattern-chain structures built cold.
    pub pattern_misses: usize,
    /// Strict-chain solves served from a cached structure.
    pub strict_hits: usize,
    /// Strict-chain structures built cold.
    pub strict_misses: usize,
}

impl CacheStats {
    /// Total solves that skipped a marking BFS.
    pub fn hits(&self) -> usize {
        self.pattern_hits + self.strict_hits
    }

    /// Total cold structure builds.
    pub fn misses(&self) -> usize {
        self.pattern_misses + self.strict_misses
    }
}

/// Cached structure of one `u × v` pattern chain.
#[derive(Debug, Clone)]
struct PatternEntry {
    mg: MarkingGraph,
}

/// Cached structure of one Strict-TPN chain.  The two reachability
/// structures are built **lazily**, each on the first candidate that
/// needs it: orbit-invariant candidates only ever build (and share) the
/// direct quotient — the full graph, `m` times larger, is never
/// materialized for them — while heterogeneous candidates build the full
/// graph.
#[derive(Debug, Clone)]
struct StrictEntry {
    tpn: Tpn,
    /// Structural row-rotation symmetry (rate invariance is re-checked
    /// against every candidate's rate table).
    sym: Option<NetSymmetry>,
    /// Direct quotient structure (first orbit-invariant candidate).
    quotient: Option<QuotientGraph>,
    /// Full marking graph (first candidate that cannot lump).
    full: Option<MarkingGraph>,
}

/// Options of a cached Strict-chain solve (the markov-level mirror of the
/// consumer's `ExpOptions`).
#[derive(Debug, Clone, Copy)]
pub struct StrictOptions {
    /// State budget for a cold marking-graph build.
    pub max_states: usize,
    /// Solve the symmetry-reduced quotient when the candidate's rates
    /// keep the row-rotation symmetry (exact either way).
    pub lumping: bool,
    /// Worker threads of a cold BFS ([`MarkingOptions::threads`]; `0` =
    /// auto).  Any value builds the bitwise-identical structure, so warm
    /// hits never depend on it.
    pub threads: usize,
    /// Stationary solver ([`SolverChoice::Auto`] = the measured plan).
    /// Applies to every solve, warm or cold — forcing a method changes
    /// the result bits only within the solvers' agreement tolerance.
    pub solver: SolverChoice,
    /// Marking-arena compression of a cold BFS
    /// ([`MarkingOptions::arena_compression`]).  Storage-only: any value
    /// builds the bitwise-identical structure.
    pub arena_compression: ArenaCompression,
    /// Spill marking-arena payload bytes of a cold BFS to an unlinked
    /// temp file ([`MarkingOptions::interner_spill`]).  Storage-only: any
    /// value builds the bitwise-identical structure, so warm hits never
    /// depend on it.
    pub interner_spill: bool,
    /// Cooperative resource budget, checked per BFS level of a cold build
    /// and at the stationary solver's checkpoints.  The checks only
    /// decide *whether* to abort — an un-fired budget never changes a
    /// single output bit.
    pub budget: Budget,
}

impl Default for StrictOptions {
    fn default() -> Self {
        StrictOptions {
            max_states: 4_000_000,
            lumping: true,
            threads: 0,
            solver: SolverChoice::Auto,
            arena_compression: ArenaCompression::Auto,
            interner_spill: false,
            budget: Budget::UNLIMITED,
        }
    }
}

/// Result of a cached Strict-chain solve.
#[derive(Debug, Clone)]
pub struct StrictSolve {
    /// System throughput (summed stationary firing rate of the last
    /// column).
    pub throughput: f64,
    /// States of the full marking chain (for a direct-quotient solve this
    /// is `Σ orbit sizes` — the full graph itself was never built).
    pub full_states: usize,
    /// States of the quotient actually solved (`None` ⇒ full solve).
    pub lumped_states: Option<usize>,
    /// `true` when the quotient was constructed (or reused) directly via
    /// canonical markings, without materializing the full chain.
    pub quotient_direct: bool,
    /// `true` when the structure came from the cache (no BFS ran).
    pub cache_hit: bool,
    /// The stationary method that actually ran (the plan's pick under
    /// [`SolverChoice::Auto`]).
    pub solver: Solver,
    /// The diagonal scaling that method iterated under
    /// ([`crate::ctmc::Precond::Jacobi`] only for GMRES).
    pub precond: Precond,
    /// Final max-norm stationarity residual of the solved vector.
    pub residual: f64,
    /// Iterations the winning solver spent (sweeps for relaxations and
    /// power, matvecs for GMRES, `n` for GTH).
    pub iterations: usize,
    /// Storage accounting of the structure that served this solve.  On a
    /// warm hit these are the bytes of the **cached** build (the arenas
    /// resident in the cache), not of any per-request allocation.
    pub arena: ArenaStats,
}

/// A cache of marking-graph structures keyed by chain shape.
///
/// See the module docs for the reuse contract.  One cache serves one
/// search (or one worker thread of a parallel search); it is deliberately
/// not synchronized.
///
/// # Warm reuse
///
/// ```
/// use repstream_markov::cache::{ChainCache, StrictOptions};
/// use repstream_petri::shape::{MappingShape, ResourceTable};
///
/// let shape = MappingShape::new(vec![2, 3]);
/// let opts = StrictOptions {
///     max_states: 1 << 20,
///     ..Default::default()
/// };
/// let mut cache = ChainCache::new();
///
/// // The first candidate of a shape pays for the BFS…
/// let rates = ResourceTable::from_fns(&shape, |_, _| 0.5, |_, _, _| 2.0);
/// let cold = cache.strict_throughput(&shape, &rates, opts).unwrap();
/// assert!(!cold.cache_hit);
///
/// // …every later candidate over the same shape refills the cached CSR
/// // in O(nnz) — and gets bitwise the value a cold solve would produce.
/// let faster = ResourceTable::from_fns(&shape, |_, _| 1.0, |_, _, _| 4.0);
/// let warm = cache.strict_throughput(&shape, &faster, opts).unwrap();
/// assert!(warm.cache_hit);
/// assert_eq!(cache.stats().strict_hits, 1);
/// let fresh = ChainCache::new()
///     .strict_throughput(&shape, &faster, opts)
///     .unwrap();
/// assert_eq!(warm.throughput.to_bits(), fresh.throughput.to_bits());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChainCache {
    patterns: FxHashMap<(usize, usize), PatternEntry>,
    strict: FxHashMap<TpnSignature, StrictEntry>,
    stats: CacheStats,
}

impl ChainCache {
    /// An empty cache.
    pub fn new() -> ChainCache {
        ChainCache::default()
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Exact inner throughput of a pattern with per-link exponential
    /// rates `rate[a][b]` — the cached equivalent of
    /// [`crate::pattern::pattern_throughput`], bitwise identical to it.
    ///
    /// # Panics
    /// Panics on a ragged rate matrix or non-coprime dimensions.
    pub fn pattern_throughput(
        &mut self,
        rate: &[Vec<f64>],
        max_states: usize,
    ) -> Result<f64, MarkingError> {
        let u = rate.len();
        let v = rate[0].len();
        assert!(rate.iter().all(|r| r.len() == v), "ragged rate matrix");
        assert!(gcd(u, v) == 1, "pattern dimensions must be coprime");
        let n = u * v;
        if let Some(entry) = self.patterns.get(&(u, v)) {
            self.stats.pattern_hits += 1;
            // Transition k is pattern row k: sender k mod u → receiver
            // k mod v (the comm_pattern convention).
            let trans_rates: Vec<f64> = (0..n).map(|k| rate[k % u][k % v]).collect();
            let ctmc = entry.mg.ctmc_with_trans_rates(&trans_rates);
            let all: Vec<usize> = (0..n).collect();
            return Ok(entry.mg.throughput_with(&ctmc, &trans_rates, &all));
        }
        self.stats.pattern_misses += 1;
        let net = comm_pattern(u, v, |a, b| rate[a][b]);
        let mg = MarkingGraph::build(
            &net,
            MarkingOptions {
                max_states,
                capacity: None,
                ..Default::default()
            },
        )?;
        let all: Vec<usize> = (0..net.n_transitions()).collect();
        let rho = mg.throughput_of(&net, &all);
        self.patterns.insert((u, v), PatternEntry { mg });
        Ok(rho)
    }

    /// Exact Strict-model throughput through the global marking chain —
    /// the cached equivalent of the Theorem 2 evaluation, bitwise
    /// identical to a cold solve
    /// (`repstream-core`'s `throughput_strict`) with the same rate table.
    ///
    /// On a miss the TPN and its structural row-rotation symmetry are
    /// built and stored under the shape's [`TpnSignature`]; the
    /// reachability structure itself is built lazily by the first
    /// candidate that needs it.  Candidates whose rates keep the
    /// symmetry (and `opts.lumping`) run on the **direct quotient**
    /// ([`QuotientGraph`]) — the full chain is never materialized for
    /// them — every other candidate on the full marking graph.  On a hit
    /// only the per-candidate work runs: the orbit-invariance check, an
    /// `O(nnz)` CSR refill, and the stationary solve.
    pub fn strict_throughput(
        &mut self,
        shape: &MappingShape,
        rates: &ResourceTable<f64>,
        opts: StrictOptions,
    ) -> Result<StrictSolve, MarkingError> {
        let key = TpnSignature::of(shape, ExecModel::Strict);
        if !self.strict.contains_key(&key) {
            let tpn = Tpn::build(shape, ExecModel::Strict);
            // Validate the rotation *structurally* once per signature
            // (rate-independent, so any candidate's net serves): a hint
            // that is not a net automorphism is dropped here and every
            // candidate takes the graceful full-chain path instead of
            // tripping the quotient builder's contract assert.
            let net = EventNet::from_tpn(&tpn, rates);
            let sym = tpn
                .row_rotation()
                .map(|a| NetSymmetry {
                    trans_perm: a.trans_perm,
                    place_perm: a.place_perm,
                })
                .filter(|s| net.symmetry_structural(s));
            self.strict.insert(
                key.clone(),
                StrictEntry {
                    tpn,
                    sym,
                    quotient: None,
                    full: None,
                },
            );
        }
        let Some(entry) = self.strict.get_mut(&key) else {
            unreachable!("entry inserted above when absent")
        };
        let trans_rates: Vec<f64> = entry
            .tpn
            .transitions()
            .iter()
            .map(|t| *rates.get(t.resource))
            .collect();
        let last = entry.tpn.last_column();
        let marking_opts = MarkingOptions {
            max_states: opts.max_states,
            capacity: None,
            threads: opts.threads,
            arena_compression: opts.arena_compression,
            interner_spill: opts.interner_spill,
            budget: opts.budget,
            ..Default::default()
        };

        // Direct-quotient path: the rotation is non-trivial and bitwise
        // rate-invariant.  (`m = 1` keeps the plain chain: the quotient
        // would be the identical graph with canonicalization overhead.)
        let direct_sym = entry.sym.as_ref().filter(|s| {
            opts.lumping
                && entry.tpn.rows() > 1
                && s.trans_perm.len() == trans_rates.len()
                && rates_orbit_invariant(&trans_rates, &s.trans_perm)
        });
        if let Some(sym) = direct_sym {
            let cache_hit = entry.quotient.is_some();
            if cache_hit {
                self.stats.strict_hits += 1;
            } else {
                self.stats.strict_misses += 1;
                let net = EventNet::from_tpn(&entry.tpn, rates);
                entry.quotient = Some(QuotientGraph::build(&net, sym, marking_opts)?);
            }
            let Some(qg) = entry.quotient.as_ref() else {
                unreachable!("quotient built above when absent")
            };
            let ctmc = qg.ctmc_with_trans_rates(&trans_rates);
            let (throughput, report) = qg.throughput_solve_governed(
                &ctmc,
                &trans_rates,
                &last,
                opts.solver,
                &opts.budget,
            )?;
            return Ok(StrictSolve {
                throughput,
                full_states: qg.full_states(),
                lumped_states: Some(qg.n_states()),
                quotient_direct: true,
                cache_hit,
                solver: report.solver,
                precond: report.precond,
                residual: report.residual,
                iterations: report.iterations,
                arena: qg.arena_stats(),
            });
        }

        // Full-chain path (heterogeneous rates, m = 1, or lumping off).
        let cache_hit = entry.full.is_some();
        if cache_hit {
            self.stats.strict_hits += 1;
        } else {
            self.stats.strict_misses += 1;
            let net = EventNet::from_tpn(&entry.tpn, rates);
            entry.full = Some(MarkingGraph::build(&net, marking_opts)?);
        }
        let Some(mg) = entry.full.as_ref() else {
            unreachable!("full graph built above when absent")
        };
        let ctmc = mg.ctmc_with_trans_rates(&trans_rates);
        let (throughput, report) =
            mg.throughput_solve_governed(&ctmc, &trans_rates, &last, opts.solver, &opts.budget)?;
        Ok(StrictSolve {
            throughput,
            full_states: mg.n_states(),
            lumped_states: None,
            quotient_direct: false,
            cache_hit,
            solver: report.solver,
            precond: report.precond,
            residual: report.residual,
            iterations: report.iterations,
            arena: mg.arena_stats(),
        })
    }
}

/// A concurrency-safe, sharded [`ChainCache`] for the serving layer.
///
/// One `SharedChainCache` serves every worker of a `repstream serve`
/// daemon: requests over the **same** chain shape share one structure
/// build, requests over different shapes proceed in parallel.
///
/// # Sharding contract
///
/// The cache is `shards` independent [`ChainCache`]s, each behind its own
/// [`Mutex`].  A solve locks exactly **one** shard — picked by the Fx
/// hash of its structural key ([`TpnSignature`] for Strict chains, the
/// coprime `(u′, v′)` pair for pattern chains) — for the whole solve
/// (cold build included).  Consequences, stated honestly:
///
/// - Two requests whose keys land on **different** shards never contend.
/// - Two requests over the **same** shape serialize: the second waits for
///   the first's build and then gets a warm hit instead of a duplicate
///   BFS.  That is the design — one BFS per shape, ever.
/// - Two requests over **different** shapes that *collide* on a shard
///   also serialize.  With the default 16 shards and the handful of hot
///   shapes a deployment sees, collisions are rare; raise `shards` if a
///   profile shows otherwise.
///
/// # Poisoning
///
/// A worker that panics mid-build poisons only its shard's mutex, and
/// the shard is still **consistent**: [`ChainCache`] installs a
/// structure entry only after its build fully succeeds, so a poisoned
/// shard never holds a partial chain.  Locks therefore recover from
/// poisoning (`PoisonError::into_inner`) instead of propagating the
/// panic — the entry the panicking request was building is simply absent
/// and the next request rebuilds it.
///
/// # Bitwise contract
///
/// Same as [`ChainCache`]: every value served — warm or cold, whichever
/// thread asks — is bitwise identical to a cold sequential solve of the
/// same inputs.  `repstream`'s `shared_cache` stress tests pin this
/// under 8-way concurrency.
#[derive(Debug, Default)]
pub struct SharedChainCache {
    shards: Vec<Mutex<ChainCache>>,
}

impl SharedChainCache {
    /// Default shard count of [`SharedChainCache::new`].
    pub const DEFAULT_SHARDS: usize = 16;

    /// A shared cache with [`Self::DEFAULT_SHARDS`] shards.
    pub fn new() -> SharedChainCache {
        SharedChainCache::with_shards(SharedChainCache::DEFAULT_SHARDS)
    }

    /// A shared cache with `shards` shards (rounded up to a power of two,
    /// minimum 1, so the shard pick is a mask).
    pub fn with_shards(shards: usize) -> SharedChainCache {
        let n = shards.max(1).next_power_of_two();
        SharedChainCache {
            shards: (0..n).map(|_| Mutex::new(ChainCache::new())).collect(),
        }
    }

    /// Number of shards (a power of two).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Lock the shard owning `key`, recovering from poisoning (see the
    /// type docs for why that is sound).
    fn shard_for<K: Hash>(&self, key: &K) -> std::sync::MutexGuard<'_, ChainCache> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        let idx = (h.finish() as usize) & (self.shards.len() - 1);
        self.shards[idx]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Concurrent equivalent of [`ChainCache::pattern_throughput`]:
    /// bitwise identical to a cold solve, one shard locked for the call.
    ///
    /// # Panics
    /// Panics on a ragged rate matrix or non-coprime dimensions.
    pub fn pattern_throughput(
        &self,
        rate: &[Vec<f64>],
        max_states: usize,
    ) -> Result<f64, MarkingError> {
        let key = (rate.len(), rate.first().map_or(0, Vec::len));
        self.shard_for(&key).pattern_throughput(rate, max_states)
    }

    /// Concurrent equivalent of [`ChainCache::strict_throughput`]:
    /// bitwise identical to a cold solve, one shard locked for the call.
    pub fn strict_throughput(
        &self,
        shape: &MappingShape,
        rates: &ResourceTable<f64>,
        opts: StrictOptions,
    ) -> Result<StrictSolve, MarkingError> {
        let key = TpnSignature::of(shape, ExecModel::Strict);
        self.shard_for(&key).strict_throughput(shape, rates, opts)
    }

    /// Hit/miss counters summed over every shard.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .stats();
            total.pattern_hits += s.pattern_hits;
            total.pattern_misses += s.pattern_misses;
            total.strict_hits += s.strict_hits;
            total.strict_misses += s.strict_misses;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern;

    fn het_matrix(u: usize, v: usize, bump: f64) -> Vec<Vec<f64>> {
        (0..u)
            .map(|a| {
                (0..v)
                    .map(|b| 0.4 + ((3 * a + b) % 5) as f64 * bump)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pattern_hit_is_bitwise_cold() {
        let mut cache = ChainCache::new();
        for bump in [0.25, 0.125, 0.5] {
            let m = het_matrix(3, 4, bump);
            let cold = pattern::pattern_throughput(&m, 1 << 20).unwrap();
            let cached = cache.pattern_throughput(&m, 1 << 20).unwrap();
            assert_eq!(cold.to_bits(), cached.to_bits(), "bump {bump}");
        }
        assert_eq!(cache.stats().pattern_misses, 1);
        assert_eq!(cache.stats().pattern_hits, 2);
    }

    #[test]
    fn pattern_distinct_shapes_get_distinct_entries() {
        let mut cache = ChainCache::new();
        cache
            .pattern_throughput(&het_matrix(2, 3, 0.2), 1 << 20)
            .unwrap();
        cache
            .pattern_throughput(&het_matrix(3, 2, 0.2), 1 << 20)
            .unwrap();
        cache
            .pattern_throughput(&het_matrix(2, 3, 0.3), 1 << 20)
            .unwrap();
        assert_eq!(cache.stats().pattern_misses, 2);
        assert_eq!(cache.stats().pattern_hits, 1);
    }

    #[test]
    fn strict_hit_is_bitwise_cold_homogeneous() {
        // Homogeneous rates → the lumped path engages on both cold and
        // cached solves and must agree bit for bit.
        let shape = MappingShape::new(vec![2, 3]);
        let opts = StrictOptions {
            max_states: 1 << 20,
            ..Default::default()
        };
        let mut warm = ChainCache::new();
        for lam in [0.5, 0.25, 2.0] {
            let rates = ResourceTable::from_fns(&shape, |_, _| lam, |_, _, _| 2.0 * lam);
            let mut cold = ChainCache::new();
            let a = cold.strict_throughput(&shape, &rates, opts).unwrap();
            let b = warm.strict_throughput(&shape, &rates, opts).unwrap();
            assert!(!a.cache_hit);
            assert_eq!(a.throughput.to_bits(), b.throughput.to_bits(), "λ {lam}");
            assert_eq!(a.lumped_states, b.lumped_states);
            assert!(a.lumped_states.is_some(), "homogeneous rates must lump");
        }
        assert_eq!(warm.stats().strict_misses, 1);
        assert_eq!(warm.stats().strict_hits, 2);
    }

    #[test]
    fn strict_parallel_build_warm_refill_is_bitwise_cold() {
        // The chunk-parallel BFS builds the identical structure, so a
        // warm refill under the parallel path must agree bit for bit with
        // cold parallel *and* cold sequential solves.
        let shape = MappingShape::new(vec![2, 3]);
        let par = StrictOptions {
            max_states: 1 << 20,
            threads: 4,
            ..Default::default()
        };
        let seq = StrictOptions { threads: 1, ..par };
        let mut warm = ChainCache::new();
        for lam in [0.5, 0.25, 2.0] {
            let rates = ResourceTable::from_fns(&shape, |_, _| lam, |_, _, _| 2.0 * lam);
            let cold_par = ChainCache::new()
                .strict_throughput(&shape, &rates, par)
                .unwrap();
            let cold_seq = ChainCache::new()
                .strict_throughput(&shape, &rates, seq)
                .unwrap();
            let warmed = warm.strict_throughput(&shape, &rates, par).unwrap();
            assert_eq!(
                cold_par.throughput.to_bits(),
                cold_seq.throughput.to_bits(),
                "λ {lam}: parallel vs sequential cold"
            );
            assert_eq!(
                warmed.throughput.to_bits(),
                cold_seq.throughput.to_bits(),
                "λ {lam}: warm refill vs cold"
            );
            assert_eq!(warmed.lumped_states, cold_seq.lumped_states);
        }
        assert_eq!(warm.stats().strict_hits, 2);
        assert_eq!(warm.stats().strict_misses, 1);
    }

    #[test]
    fn strict_heterogeneous_rates_fall_back_to_full_chain() {
        let shape = MappingShape::new(vec![2, 2]);
        let opts = StrictOptions {
            max_states: 1 << 20,
            ..Default::default()
        };
        let mut cache = ChainCache::new();
        // Warm with homogeneous rates: only the direct quotient is built.
        let hom = ResourceTable::from_fns(&shape, |_, _| 1.0, |_, _, _| 1.0);
        let a = cache.strict_throughput(&shape, &hom, opts).unwrap();
        assert!(a.quotient_direct && a.lumped_states.is_some(), "{a:?}");
        assert!(!a.cache_hit);
        // A heterogeneous candidate on the same signature refuses the
        // quotient and lazily builds the full chain (a structural miss)…
        let het = ResourceTable::from_fns(&shape, |_, s| 1.0 + s as f64, |_, _, _| 1.0);
        let b = cache.strict_throughput(&shape, &het, opts).unwrap();
        assert!(!b.cache_hit);
        assert!(!b.quotient_direct && b.lumped_states.is_none(), "{b:?}");
        assert!(b.throughput > 0.0);
        // …which later heterogeneous candidates reuse, as homogeneous
        // ones reuse the quotient.
        let het2 = ResourceTable::from_fns(&shape, |_, s| 2.0 + s as f64, |_, _, _| 1.0);
        assert!(
            cache
                .strict_throughput(&shape, &het2, opts)
                .unwrap()
                .cache_hit
        );
        assert!(
            cache
                .strict_throughput(&shape, &hom, opts)
                .unwrap()
                .cache_hit
        );
    }
}
