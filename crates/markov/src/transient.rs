//! Transient analysis by uniformization.
//!
//! The stationary solvers give the long-run throughput; uniformization
//! gives the *ramp*: state probabilities at finite time `t`, hence the
//! expected number of completions over `[0, t]` and the finite-horizon
//! throughput curve that the paper's Figure 10 measures by simulation.
//!
//! For generator `Q` with uniformization rate `Λ ≥ max_s q_s`, let
//! `P = I + Q/Λ`.  Then
//!
//! ```text
//!   π(t) = Σ_{k≥0} Poisson(Λt; k) · π(0) Pᵏ
//! ```
//!
//! truncated when the Poisson tail falls below a tolerance.  The expected
//! reward accumulated by time `t` (e.g. firings of the last TPN column)
//! integrates the same series.

use crate::ctmc::Ctmc;

/// Transient distribution `π(t)` starting from `pi0`.
///
/// Truncates the Poisson series once the accumulated weight exceeds
/// `1 − tol`; cost is `O(Λt · nnz)`.
pub fn transient_distribution(ctmc: &Ctmc, pi0: &[f64], t: f64, tol: f64) -> Vec<f64> {
    let n = ctmc.n_states();
    assert_eq!(pi0.len(), n);
    assert!(t >= 0.0);
    let lam = ctmc.uniformization();
    let mut vk = pi0.to_vec(); // π(0) P^k
    let mut scratch = vec![0.0; n];
    let mut out = vec![0.0; n];
    poisson_sum(lam * t, tol, |weight| {
        for (o, v) in out.iter_mut().zip(vk.iter()) {
            *o += weight * v;
        }
        step(ctmc, lam, &mut vk, &mut scratch);
    });
    // Numerical cleanup: renormalize.
    let s: f64 = out.iter().sum();
    if s > 0.0 {
        for v in &mut out {
            *v /= s;
        }
    }
    out
}

/// Expected total reward accumulated over `[0, t]`, where state `s` earns
/// `reward[s]` per unit time.  With `reward[s] = Σ λ_t·[t enabled]` over
/// the last-column transitions this is the expected number of completed
/// data sets by time `t`.
pub fn expected_accumulated_reward(
    ctmc: &Ctmc,
    pi0: &[f64],
    reward: &[f64],
    t: f64,
    tol: f64,
) -> f64 {
    let n = ctmc.n_states();
    assert_eq!(pi0.len(), n);
    assert_eq!(reward.len(), n);
    let lam = ctmc.uniformization();
    // ∫₀ᵗ π(u)·r du = (1/Λ) Σ_k [Poisson tail > k](Λt) · π(0)Pᵏ·r —
    // using the identity ∫₀ᵗ Poisson(Λu;k) Λ du = P(Poisson(Λt) > k).
    let mut vk = pi0.to_vec();
    let mut scratch = vec![0.0; n];
    let mut acc = 0.0;
    // tail(k) = P(N > k) computed alongside the pmf.
    let lt = lam * t;
    let mut pmf = (-lt).exp();
    let mut cdf = pmf;
    let mut k = 0usize;
    let kmax = series_cap(lt, tol);
    loop {
        let tail = 1.0 - cdf;
        let dot: f64 = vk.iter().zip(reward.iter()).map(|(a, b)| a * b).sum();
        acc += tail * dot;
        if k >= kmax {
            break;
        }
        step(ctmc, lam, &mut vk, &mut scratch);
        k += 1;
        pmf *= lt / k as f64;
        cdf += pmf;
    }
    acc / lam
}

/// One uniformized step: `v ← v P` with `P = I + Q/Λ`, into the reused
/// `scratch` buffer (the Poisson series takes `O(Λt)` steps; allocating a
/// fresh vector per step was measurable on long horizons).
fn step(ctmc: &Ctmc, lam: f64, v: &mut Vec<f64>, scratch: &mut Vec<f64>) {
    let inv_lam = 1.0 / lam;
    scratch.iter_mut().for_each(|x| *x = 0.0);
    for (s, val) in v.iter().enumerate() {
        if *val == 0.0 {
            continue;
        }
        let mut stay = *val;
        for (&j, &r) in ctmc.row_targets(s).iter().zip(ctmc.row_rates(s)) {
            let w = val * r * inv_lam;
            scratch[j as usize] += w;
            stay -= w;
        }
        scratch[s] += stay;
    }
    std::mem::swap(v, scratch);
}

/// Number of Poisson terms needed for mass `1 − tol` (mean + safety).
fn series_cap(mean: f64, tol: f64) -> usize {
    let sigma = mean.sqrt().max(1.0);
    (mean + 8.0 * sigma + 10.0 - (tol.log10())).ceil() as usize
}

/// Drive `f` with Poisson(mean) weights until the mass reaches `1 − tol`.
fn poisson_sum(mean: f64, tol: f64, mut f: impl FnMut(f64)) {
    let mut pmf = (-mean).exp();
    let mut acc = 0.0;
    let cap = series_cap(mean, tol);
    for k in 0..=cap {
        f(pmf);
        acc += pmf;
        if acc >= 1.0 - tol {
            break;
        }
        pmf *= mean / (k as f64 + 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state chain 0 →λ 1 →μ 0.
    fn two_state(lam: f64, mu: f64) -> Ctmc {
        Ctmc::new(vec![vec![(1, lam)], vec![(0, mu)]])
    }

    #[test]
    fn transient_converges_to_stationary() {
        let c = two_state(2.0, 3.0);
        let p = transient_distribution(&c, &[1.0, 0.0], 50.0, 1e-12);
        assert!((p[0] - 0.6).abs() < 1e-9, "{p:?}");
        assert!((p[1] - 0.4).abs() < 1e-9);
    }

    #[test]
    fn transient_at_zero_is_initial() {
        let c = two_state(2.0, 3.0);
        let p = transient_distribution(&c, &[0.0, 1.0], 0.0, 1e-12);
        assert!((p[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transient_closed_form_two_state() {
        // p₀(t) = μ/(λ+μ) + λ/(λ+μ)·e^{−(λ+μ)t} from state 0.
        let (lam, mu) = (2.0, 3.0);
        let c = two_state(lam, mu);
        for &t in &[0.1, 0.3, 0.7, 1.5] {
            let p = transient_distribution(&c, &[1.0, 0.0], t, 1e-13);
            let expect = mu / (lam + mu) + lam / (lam + mu) * (-(lam + mu) * t).exp();
            assert!((p[0] - expect).abs() < 1e-9, "t={t}: {} vs {expect}", p[0]);
        }
    }

    #[test]
    fn accumulated_reward_poisson_counter() {
        // Single state with a self-loop rate λ... a CTMC can't have a
        // self-transition, so use the two-state cycle with equal rates: the
        // total firing reward over [0,t] must be λ_eff·t asymptotically
        // with λ_eff = 1/(1/λ + 1/μ).
        let (lam, mu) = (2.0, 2.0);
        let c = two_state(lam, mu);
        // Reward = rate of leaving each state = expected firings/unit.
        let reward = vec![lam, mu];
        let t = 200.0;
        let r = expected_accumulated_reward(&c, &[1.0, 0.0], &reward, t, 1e-12);
        // Each unit of time yields on average 2 transitions (states always
        // firing at rate 2): reward rate = 2.
        assert!((r - 2.0 * t).abs() < 0.02 * 2.0 * t, "r {r}");
    }

    #[test]
    fn reward_ramp_is_increasing_and_concaveish() {
        let c = two_state(1.0, 5.0);
        let reward = vec![1.0, 0.0]; // only state 0 earns
        let mut last = 0.0;
        for &t in &[0.5, 1.0, 2.0, 4.0, 8.0] {
            let r = expected_accumulated_reward(&c, &[1.0, 0.0], &reward, t, 1e-12);
            assert!(r >= last - 1e-12, "not increasing at {t}");
            last = r;
        }
    }
}
