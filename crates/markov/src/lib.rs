//! # repstream-markov
//!
//! Continuous-time Markov chains over Petri-net markings — the engine
//! behind the exponential-law throughput results of the paper (Section 5).
//!
//! When every firing time is exponential, the marking of a timed event
//! graph is a CTMC: in marking `M` the enabled transitions race, transition
//! `t` wins with rate `λ_t` and moves the net to `M − •t + t•`
//! (Theorem 2).  The throughput is then the stationary probability-weighted
//! firing rate of the last-column transitions.
//!
//! Modules:
//!
//! * [`net`] — a minimal event-net representation ([`net::EventNet`]) and
//!   constructors: adapters from `repstream-petri` TPNs and the `u × v`
//!   communication *pattern* of Theorem 3;
//! * [`marking`] — reachable-marking enumeration (BFS with an FxHash map,
//!   optional capacity bound for non-safe nets) producing a [`ctmc::Ctmc`],
//!   plus the **direct quotient BFS** ([`marking::QuotientGraph`]): when a
//!   validated rate-preserving automorphism is known up front, the state
//!   space is explored one canonical representative per orbit, emitting
//!   the symmetry-reduced chain without ever materializing the full one,
//!   with optionally delta-compressed marking arenas
//!   ([`marking::ArenaCompression`] — storage-only, bitwise-identical
//!   output) for the 10M+-state regime;
//! * [`ctmc`] — stationary solvers: GTH elimination (subtraction-free,
//!   exact up to rounding), Gauss–Seidel, and uniformized power iteration,
//!   selected by an explicit measured [`SolverPlan`](ctmc::SolverPlan);
//! * [`krylov`] — the top-end solvers of that plan: restarted GMRES on
//!   `πQ = 0` (Arnoldi + Givens least squares with renormalized
//!   deflation) and SOR, for the ≥ 2²⁰-state quotient chains;
//! * [`pattern`] — the Young-diagram pattern chain of Theorem 3: the state
//!   count `S(u,v) = C(u+v−1, u−1) · v`, its stationary throughput under
//!   arbitrary per-link rates, and the homogeneous closed form
//!   `u·v·λ/(u+v−1)` of Theorem 4;
//! * [`lump`] — exact ordinary lumping (symmetry reduction): splitter-based
//!   partition refinement, [`Ctmc::quotient`](ctmc::Ctmc::quotient) with a
//!   lift back to full-state marginals, and the lump-first solve
//!   [`Ctmc::stationary_lumped`](ctmc::Ctmc::stationary_lumped) seeded from
//!   the TPN row-rotation orbits via
//!   [`marking::MarkingGraph::orbit_partition`];
//! * [`cache`] — structure-keyed chain reuse for batch evaluation:
//!   marking graphs (and their symmetry orbit seeds) cached per
//!   [`TpnSignature`](repstream_petri::tpn::TpnSignature) / pattern shape,
//!   with `O(nnz)` CSR rate refills on hits
//!   ([`MarkingGraph::ctmc_with_trans_rates`](marking::MarkingGraph::ctmc_with_trans_rates));
//! * [`transient`] — finite-horizon analysis by uniformization: `π(t)` and
//!   the expected completions over `[0, t]` (the analytic counterpart of
//!   the paper's throughput-vs-data-sets curves);
//! * [`govern`] — the cooperative resource governor: a `Copy`
//!   [`Budget`] (wall-clock deadline, arena-byte cap,
//!   external cancel flag) checked once per BFS level / solver
//!   checkpoint / candidate batch, surfacing overruns as structured
//!   [`Interrupt`]s instead of running to completion;
//! * `fault` *(feature `fault-inject`)* — deterministic fault
//!   injection: spill I/O failures at the Nth operation, forced solver
//!   stagnation and budget exhaustion at chosen BFS levels, installable
//!   from `REPSTREAM_FAULT`, so every error path is exercised by tests;
//! * [`fxhash`] — a small Fx-style hasher for marking deduplication
//!   (markings are short byte strings; SipHash is measurably slower and
//!   HashDoS is irrelevant here).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod ctmc;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod fxhash;
pub mod govern;
pub mod krylov;
pub mod lump;
pub mod marking;
pub mod net;
pub mod pattern;
pub mod transient;

pub use cache::ChainCache;
pub use ctmc::{Ctmc, SolveReport, Solver, SolverChoice};
pub use govern::{Budget, Interrupt, InterruptReason, Phase, Progress};
pub use marking::{ArenaCompression, MarkingGraph, MarkingOptions, QuotientGraph};
pub use net::EventNet;
