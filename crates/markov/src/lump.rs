//! Exact ordinary lumping (symmetry reduction) of CTMCs.
//!
//! The Theorem 2 chain is built on the marking graph of a TPN whose row
//! count is `m = lcm(R_1, …, R_N)`, so the state space explodes
//! combinatorially long before any solver becomes the bottleneck.  When the
//! mapping is *homogeneous* (every slot of a team runs at one rate and
//! every link of a file at one rate), the TPN's row-rotation automorphism
//! induces a rate-preserving permutation of the reachable markings, and the
//! chain can be collapsed **exactly** onto its symmetry classes before
//! solving.
//!
//! # Lumpability criterion
//!
//! A partition `P = {B_1, …, B_k}` of the states is **ordinarily lumpable**
//! when for every pair of blocks `B ≠ C` the total rate into `C` is the
//! same from every state of `B`:
//!
//! ```text
//!   ∀ B, C ∈ P, B ≠ C, ∀ s, s' ∈ B:   Σ_{j ∈ C} q(s, j) = Σ_{j ∈ C} q(s', j)
//! ```
//!
//! The aggregated process over the blocks is then itself a CTMC with
//! `q̂(B, C)` equal to that common value, and its stationary vector
//! aggregates the full one: `π̂(B) = Σ_{s ∈ B} π(s)` (Kemeny–Snell;
//! Buchholz 1994 for the CTMC form).
//!
//! # The algorithm
//!
//! [`coarsest_refinement`] computes the **coarsest ordinarily lumpable
//! partition that refines a seed partition** by splitter-based partition
//! refinement in the style of Derisavi, Hermanns & Sanders ("Optimal
//! state-space lumping in Markov chains", IPL 2003): a worklist of
//! splitter blocks; for each splitter `C`, every block is split by the
//! per-state rate into `C` (computed through the incoming adjacency of
//! `C`'s members, so one splitter costs `O(in-degree of C)`).  Whenever a
//! block's membership changes, all of its fragments are re-enqueued, which
//! makes the termination state stable against *every* final block.
//!
//! # Seed-partition contract and lift semantics
//!
//! The quotient/aggregation identity above holds for any lumpable
//! partition, but recovering the **per-state** stationary probabilities
//! needs more: [`Lift::lift`] spreads each block's mass uniformly,
//! `π(s) = π̂(B(s)) / |B(s)|`, which is exact precisely when every block is
//! contained in one orbit of a rate-preserving automorphism group of the
//! chain (states related by an automorphism have equal stationary
//! probability, and refinement only ever *splits* the seed blocks, so
//! orbit-seeded refinements keep every block inside an orbit).  Callers
//! that seed from anything other than automorphism orbits must use
//! [`Lift::aggregate`]-level quantities only — per-block sums are always
//! exact, uniform per-state spreading is not.
//!
//! The canonical producer of orbit seeds is
//! [`crate::marking::MarkingGraph::orbit_partition`], fed by the TPN
//! row-rotation automorphism of `repstream_petri::tpn::Tpn::row_rotation`.
//!
//! # Full-then-lump vs direct construction
//!
//! This module is the *full-then-lump* pipeline: build the full chain,
//! propagate the orbit seed, refine, quotient.  When the automorphism is
//! known **up front** (the validated row-rotation of a homogeneous Strict
//! TPN), [`crate::marking::QuotientGraph`] builds the very same quotient
//! chain directly — one canonical representative per orbit, never
//! materializing the full graph — and [`Ctmc::quotient`] is deliberately
//! arranged (first-member rows, first-hit edge order) so the two paths
//! agree bit for bit.  Full-then-lump remains the fallback for hints that
//! cannot be pre-validated and the oracle the property tests compare
//! against.

use crate::ctmc::{CsrBuilder, Ctmc, SolveReport, SolverChoice};

/// A partition of `0..n` states into contiguous-numbered blocks.
///
/// Blocks are numbered `0..n_blocks` in order of first appearance by state
/// index, so two `Partition`s over the same state set compare equal iff
/// they group the states identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Block id of every state.
    block_of: Vec<u32>,
    /// Number of blocks.
    n_blocks: usize,
}

impl Partition {
    /// The coarsest partition: every state in one block.
    pub fn trivial(n: usize) -> Self {
        assert!(n > 0, "partition of an empty state set");
        Partition {
            block_of: vec![0; n],
            n_blocks: 1,
        }
    }

    /// Build from arbitrary per-state labels (normalized to dense block
    /// ids in order of first appearance).
    pub fn from_labels(labels: &[u32]) -> Self {
        assert!(!labels.is_empty(), "partition of an empty state set");
        let max = labels.iter().max().map_or(0, |&m| m as usize);
        // Dense remap when the label range is comparable to the state
        // count (always the case for the refinement's internal block
        // ids); a hash map only for pathological sparse label sets.
        if max < labels.len().saturating_mul(4).max(1024) {
            let mut remap = vec![u32::MAX; max + 1];
            let mut n_blocks = 0u32;
            let block_of = labels
                .iter()
                .map(|&l| {
                    let slot = &mut remap[l as usize];
                    if *slot == u32::MAX {
                        *slot = n_blocks;
                        n_blocks += 1;
                    }
                    *slot
                })
                .collect();
            return Partition {
                block_of,
                n_blocks: n_blocks as usize,
            };
        }
        let mut remap: std::collections::HashMap<u32, u32> = Default::default();
        let mut block_of = Vec::with_capacity(labels.len());
        for &l in labels {
            let next = remap.len() as u32;
            block_of.push(*remap.entry(l).or_insert(next));
        }
        let n_blocks = remap.len();
        Partition { block_of, n_blocks }
    }

    /// Orbits of a permutation `perm` of `0..n` (each cycle of the
    /// permutation becomes one block).  This is the orbit partition of the
    /// cyclic group generated by `perm`, i.e. a valid automorphism-orbit
    /// seed whenever `perm` is a rate-preserving automorphism of the chain.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn from_permutation_orbits(perm: &[u32]) -> Self {
        let n = perm.len();
        assert!(n > 0, "partition of an empty state set");
        let mut block_of = vec![u32::MAX; n];
        let mut n_blocks = 0u32;
        for start in 0..n {
            if block_of[start] != u32::MAX {
                continue;
            }
            let mut s = start;
            loop {
                assert!(
                    block_of[s] == u32::MAX,
                    "perm is not a permutation (state {s} reached twice)"
                );
                block_of[s] = n_blocks;
                s = perm[s] as usize;
                assert!(s < n, "perm maps outside 0..{n}");
                if s == start {
                    break;
                }
            }
            n_blocks += 1;
        }
        Partition {
            block_of,
            n_blocks: n_blocks as usize,
        }
    }

    /// Number of states partitioned.
    pub fn n_states(&self) -> usize {
        self.block_of.len()
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Block id of state `s`.
    #[inline]
    pub fn block_of(&self, s: usize) -> usize {
        self.block_of[s] as usize
    }

    /// `true` when every state is its own block (no reduction).
    pub fn is_discrete(&self) -> bool {
        self.n_blocks == self.block_of.len()
    }

    /// `true` when `self` refines `other` (every block of `self` is
    /// contained in a block of `other`; both over the same state count).
    pub fn refines(&self, other: &Partition) -> bool {
        if self.n_states() != other.n_states() {
            return false;
        }
        // Two states in one self-block must share their other-block.
        let mut rep = vec![u32::MAX; self.n_blocks];
        for s in 0..self.n_states() {
            let b = self.block_of[s] as usize;
            if rep[b] == u32::MAX {
                rep[b] = other.block_of[s];
            } else if rep[b] != other.block_of[s] {
                return false;
            }
        }
        true
    }

    /// Member lists per block, in state order.
    pub fn blocks(&self) -> Vec<Vec<u32>> {
        let mut blocks = vec![Vec::new(); self.n_blocks];
        for (s, &b) in self.block_of.iter().enumerate() {
            blocks[b as usize].push(s as u32);
        }
        blocks
    }
}

/// Relative tolerance used to group per-state splitter rates: two rates
/// `a ≤ b` land in one group when `b − a ≤ RATE_RTOL · max(|a|, |b|)`.
/// Symmetric chains produce bitwise-identical sums, so this only absorbs
/// benign summation-order noise; it is far below the 1e-8 agreement the
/// property tests demand.
const RATE_RTOL: f64 = 1e-12;

/// The coarsest ordinarily lumpable partition of `c` refining `seed`
/// (splitter-based partition refinement; see the module docs).
///
/// # Panics
/// Panics if `seed` does not cover exactly the states of `c`.
pub fn coarsest_refinement(c: &Ctmc, seed: &Partition) -> Partition {
    let n = c.n_states();
    assert_eq!(seed.n_states(), n, "seed partition size mismatch");

    // Mutable partition state: member lists + block id per state.
    let mut members: Vec<Vec<u32>> = seed.blocks();
    let mut block_of: Vec<u32> = seed.block_of.clone();

    let mut worklist: std::collections::VecDeque<u32> = (0..members.len() as u32).collect();
    let mut queued = vec![true; members.len()];

    // Scratch: per-state rate into the current splitter + touched states.
    let mut w = vec![0.0f64; n];
    let mut touched: Vec<u32> = Vec::new();
    // Scratch for block-bucket grouping of the touched states (replaces a
    // per-splitter sort; indexed by block id, grown on splits).
    let mut bucket: Vec<Vec<u32>> = vec![Vec::new(); members.len()];
    let mut touched_blocks: Vec<u32> = Vec::new();
    // Scratch for the grouping step: (weight, state) pairs of one block.
    let mut pairs: Vec<(f64, u32)> = Vec::new();

    while let Some(splitter) = worklist.pop_front() {
        queued[splitter as usize] = false;
        // Rate of every predecessor state into the splitter block.
        touched.clear();
        for &member in &members[splitter as usize] {
            for (i, r) in c.in_edges(member as usize) {
                if w[i] == 0.0 {
                    touched.push(i as u32);
                }
                w[i] += r;
            }
        }
        if touched.is_empty() {
            continue;
        }

        // Group the touched states by their block (bucket scatter: O(t)).
        touched_blocks.clear();
        for &s in &touched {
            let b = block_of[s as usize];
            if bucket[b as usize].is_empty() {
                touched_blocks.push(b);
            }
            bucket[b as usize].push(s);
        }
        for &b in &touched_blocks {
            let in_block = std::mem::take(&mut bucket[b as usize]);
            // Ordinary lumpability only constrains rates *across* blocks:
            // the splitter's own members may disagree on their internal
            // rate into it, so the splitter never splits itself.
            if b == splitter {
                bucket[b as usize] = in_block; // return the allocation
                bucket[b as usize].clear();
                continue;
            }
            let block_len = members[b as usize].len();
            // A block splits when its members disagree on the rate into
            // the splitter.  Untouched members have rate 0.
            let untouched = block_len - in_block.len();
            pairs.clear();
            pairs.extend(in_block.iter().map(|&s| (w[s as usize], s)));
            {
                let mut recycled = in_block;
                recycled.clear();
                bucket[b as usize] = recycled;
            }
            pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            // Adjacent grouping over the sorted rates; the untouched
            // members form one extra (rate-0) group.
            let gap = |a: f64, b: f64| b - a > RATE_RTOL * a.abs().max(b.abs());
            let n_groups = usize::from(untouched > 0)
                + 1
                + pairs.windows(2).filter(|p| gap(p[0].0, p[1].0)).count();
            if n_groups <= 1 {
                continue;
            }

            // Split: the rate-0 (untouched) group keeps the old block id,
            // every other group gets a fresh id.  When there is no
            // untouched group the first sorted group keeps the old id.
            let mut changed: Vec<u32> = vec![b];
            if untouched > 0 {
                // Remove the touched members from the old block.
                members[b as usize].retain(|&s| w[s as usize] == 0.0);
            }
            let mut idx = 0;
            let mut first_group = untouched == 0;
            while idx < pairs.len() {
                let mut end = idx + 1;
                while end < pairs.len() && !gap(pairs[end - 1].0, pairs[end].0) {
                    end += 1;
                }
                if first_group {
                    // Keep the old id for this group.
                    members[b as usize] = pairs[idx..end].iter().map(|&(_, s)| s).collect();
                    first_group = false;
                } else {
                    let nb = members.len() as u32;
                    members.push(pairs[idx..end].iter().map(|&(_, s)| s).collect());
                    queued.push(false);
                    bucket.push(Vec::new());
                    for &(_, s) in &pairs[idx..end] {
                        block_of[s as usize] = nb;
                    }
                    changed.push(nb);
                }
                idx = end;
            }
            // Re-enqueue every fragment of the split block: the partition
            // is stable against a block only once it has been processed as
            // a splitter *after* its last membership change.
            for &cb in &changed {
                if !queued[cb as usize] {
                    queued[cb as usize] = true;
                    worklist.push_back(cb);
                }
            }
        }

        // Reset scratch for the next splitter.
        for &s in &touched {
            w[s as usize] = 0.0;
        }
    }

    // Renumber blocks densely in order of first appearance.
    Partition::from_labels(&block_of)
}

/// Verify ordinary lumpability of `p` for `c` directly from the
/// definition (test oracle; `O(n_blocks · nnz)` worst case).  `rtol` is
/// the relative tolerance on the per-block rate agreement.
pub fn is_ordinarily_lumpable(c: &Ctmc, p: &Partition, rtol: f64) -> bool {
    let n = c.n_states();
    assert_eq!(p.n_states(), n);
    let k = p.n_blocks();
    // Rate of each state into each block, block-major comparison via a
    // scratch row per state.
    let mut row = vec![0.0f64; k];
    let mut first = vec![0.0f64; k];
    let blocks = p.blocks();
    for block in &blocks {
        for (pos, &s) in block.iter().enumerate() {
            let sb = p.block_of(s as usize);
            for v in row.iter_mut() {
                *v = 0.0;
            }
            for (j, r) in c.row(s as usize) {
                let jb = p.block_of(j);
                if jb != sb {
                    row[jb] += r;
                }
            }
            if pos == 0 {
                first.copy_from_slice(&row);
            } else {
                for (a, b) in row.iter().zip(first.iter()) {
                    if (a - b).abs() > rtol * a.abs().max(b.abs()).max(1e-300) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Map from a quotient chain's stationary vector back to the full chain.
///
/// [`Lift::aggregate`] (full → blocks) is exact for every ordinarily
/// lumpable partition; [`Lift::lift`] (blocks → full, uniform within each
/// block) is exact only for automorphism-orbit-seeded partitions — see the
/// module docs for the contract.
///
/// A `Lift` built by [`Ctmc::quotient`] carries the full state → block
/// map; one built by [`Lift::from_block_sizes`] (the direct-quotient path
/// of `crate::marking::QuotientGraph`, where the full chain is never
/// materialized) carries **block sizes only** — the per-member uniform
/// probability [`Lift::member_probability`] and the full state count stay
/// available, but the positional [`Lift::lift`]/[`Lift::aggregate`] maps
/// do not ([`Lift::has_state_map`] tells the two apart).
#[derive(Debug, Clone)]
pub struct Lift {
    /// Block of every full state; empty when only sizes are known.
    block_of: Vec<u32>,
    block_size: Vec<u32>,
    /// `Σ block_size` (equals `block_of.len()` when the map is present).
    full_states: usize,
}

impl Lift {
    /// A size-only lift: block `b` has `block_size[b]` full states behind
    /// it, with no record of *which* ones.  This is what a direct
    /// quotient construction can know — the orbit sizes fall out of
    /// marking canonicalization while the full state space is never
    /// enumerated.
    pub fn from_block_sizes(block_size: Vec<u32>) -> Lift {
        let full_states = block_size.iter().map(|&k| k as usize).sum();
        Lift {
            block_of: Vec::new(),
            block_size,
            full_states,
        }
    }

    /// Number of full states.
    pub fn n_states(&self) -> usize {
        self.full_states
    }

    /// Number of quotient states (blocks).
    pub fn n_blocks(&self) -> usize {
        self.block_size.len()
    }

    /// Number of full states behind block `b`.
    pub fn block_size(&self, b: usize) -> usize {
        self.block_size[b] as usize
    }

    /// `true` when the full state → block map is available (full-chain
    /// lifts); `false` for size-only lifts from
    /// [`Lift::from_block_sizes`].
    pub fn has_state_map(&self) -> bool {
        !self.block_of.is_empty() || self.full_states == 0
    }

    /// Uniform per-member probability of block `b`:
    /// `π(s) = π̂(b) / |b|` for every member `s` (exact under the
    /// automorphism-orbit contract).  Available on size-only lifts.
    pub fn member_probability(&self, pi_quotient: &[f64], b: usize) -> f64 {
        assert_eq!(pi_quotient.len(), self.n_blocks());
        pi_quotient[b] / f64::from(self.block_size[b])
    }

    /// Spread a quotient stationary vector uniformly over each block:
    /// `π(s) = π̂(B(s)) / |B(s)|`.
    ///
    /// # Panics
    /// Panics on a size-only lift (see [`Lift::has_state_map`]).
    pub fn lift(&self, pi_quotient: &[f64]) -> Vec<f64> {
        assert_eq!(pi_quotient.len(), self.n_blocks());
        assert!(
            self.has_state_map(),
            "size-only lift: the full state map was never materialized"
        );
        self.block_of
            .iter()
            .map(|&b| pi_quotient[b as usize] / f64::from(self.block_size[b as usize]))
            .collect()
    }

    /// Aggregate a full-chain vector onto the blocks:
    /// `π̂(B) = Σ_{s ∈ B} π(s)`.
    ///
    /// # Panics
    /// Panics on a size-only lift (see [`Lift::has_state_map`]).
    pub fn aggregate(&self, pi_full: &[f64]) -> Vec<f64> {
        assert_eq!(pi_full.len(), self.n_states());
        assert!(
            self.has_state_map(),
            "size-only lift: the full state map was never materialized"
        );
        let mut out = vec![0.0f64; self.n_blocks()];
        for (&b, &p) in self.block_of.iter().zip(pi_full.iter()) {
            out[b as usize] += p;
        }
        out
    }
}

/// Result of [`Ctmc::stationary_lumped`]: the lifted stationary vector
/// plus the size bookkeeping the benches record.
#[derive(Debug, Clone)]
pub struct LumpedStationary {
    /// Stationary distribution lifted back to the full states.
    pub pi: Vec<f64>,
    /// States of the quotient chain actually solved.
    pub lumped_states: usize,
    /// States of the full chain.
    pub full_states: usize,
}

impl Ctmc {
    /// Quotient chain of an ordinarily lumpable partition, plus the
    /// [`Lift`] mapping its stationary vector back to the full states.
    ///
    /// The quotient rate `q̂(B, C)` is `Σ_{j ∈ C} q(s₀, j)` read off the
    /// **first member** `s₀` of `B` (lowest state index) — for a lumpable
    /// partition every member agrees, so the first member's value *is*
    /// the common value.  Rates accumulate in `s₀`'s CSR row order and a
    /// row's targets are emitted in first-hit order of that scan: both
    /// choices mirror the direct quotient BFS of
    /// [`crate::marking::QuotientGraph`], which is what makes
    /// full-then-lump and direct construction **bitwise identical** (the
    /// BFS's representative is exactly the block's first member; the
    /// property tests pin this).  Intra-block transitions vanish (they do
    /// not change the block, i.e. they are the quotient's self-loops).
    ///
    /// # Panics
    /// Panics if `p` does not cover exactly this chain's states.
    pub fn quotient(&self, p: &Partition) -> (Ctmc, Lift) {
        let n = self.n_states();
        assert_eq!(p.n_states(), n, "partition size mismatch");
        let k = p.n_blocks();
        let blocks = p.blocks();

        let mut builder = CsrBuilder::with_capacity(k, self.nnz().min(k * 8));
        // Scratch accumulator over target blocks.
        let mut acc = vec![0.0f64; k];
        let mut hit: Vec<u32> = Vec::new();
        for (b, block) in blocks.iter().enumerate() {
            let first = block[0];
            for (j, r) in self.row(first as usize) {
                let c = p.block_of(j);
                if c == b {
                    continue;
                }
                if acc[c] == 0.0 {
                    hit.push(c as u32);
                }
                acc[c] += r;
            }
            for &c in &hit {
                builder.push(c as usize, acc[c as usize]);
                acc[c as usize] = 0.0;
            }
            hit.clear();
            builder.end_row();
        }

        let lift = Lift {
            block_of: p.block_of.clone(),
            block_size: blocks.iter().map(|b| b.len() as u32).collect(),
            full_states: n,
        };
        (builder.finish(), lift)
    }

    /// Lump-first stationary solve: refine `seed` to the coarsest
    /// ordinarily lumpable partition, solve the quotient chain, and lift
    /// the result back to the full states (uniform within each block —
    /// exact for automorphism-orbit seeds, see the module docs).
    ///
    /// Returns `None` when the refinement **degenerates** (every state
    /// ends up its own block), in which case callers should fall back to
    /// the full-chain [`Ctmc::stationary`].
    ///
    /// **Contract:** the seed must be an automorphism-orbit partition.
    /// Cross-block stability never constrains the states *within* a
    /// block, so an over-coarse seed (e.g. [`Partition::trivial`], whose
    /// single block is vacuously lumpable) yields a quotient whose
    /// uniform lift is wrong unless the chain really is symmetric.
    pub fn stationary_lumped(&self, seed: &Partition) -> Option<LumpedStationary> {
        self.stationary_lumped_solve(seed, SolverChoice::Auto)
            .map(|(lumped, _)| lumped)
    }

    /// As [`Ctmc::stationary_lumped`], but with an explicit
    /// [`SolverChoice`] for the quotient solve and the quotient's
    /// [`SolveReport`] returned alongside for provenance (which solver
    /// ran, at what residual).  The report's `pi` is the *quotient*
    /// stationary vector the lift was computed from, not the lifted one.
    ///
    /// `stationary_lumped` delegates here with [`SolverChoice::Auto`],
    /// so the two are bitwise identical on the lifted vector.
    pub fn stationary_lumped_solve(
        &self,
        seed: &Partition,
        choice: SolverChoice,
    ) -> Option<(LumpedStationary, SolveReport)> {
        let refined = coarsest_refinement(self, seed);
        if refined.is_discrete() {
            return None;
        }
        let (quotient, lift) = self.quotient(&refined);
        let report = quotient.stationary_solve(choice);
        let lumped = LumpedStationary {
            pi: lift.lift(&report.pi),
            lumped_states: quotient.n_states(),
            full_states: self.n_states(),
        };
        Some((lumped, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two mirrored copies of a 2-state gadget glued through a hub: the
    /// mirror symmetry is an automorphism, so the orbit seed lumps it.
    fn mirrored_chain() -> Ctmc {
        // states: 0 hub; (1,2) left pair; (3,4) right pair (mirror of left)
        Ctmc::new(vec![
            vec![(1, 2.0), (3, 2.0)],
            vec![(2, 1.0)],
            vec![(0, 3.0)],
            vec![(4, 1.0)],
            vec![(0, 3.0)],
        ])
    }

    #[test]
    fn partition_constructors() {
        let p = Partition::trivial(4);
        assert_eq!(p.n_blocks(), 1);
        assert!(!p.is_discrete());
        let q = Partition::from_labels(&[7, 3, 7, 9]);
        assert_eq!(q.n_blocks(), 3);
        assert_eq!(q.block_of(0), q.block_of(2));
        assert_ne!(q.block_of(0), q.block_of(1));
        assert!(q.refines(&p));
        assert!(!p.refines(&q));
        // Orbits of the permutation (0 1)(2)(3 4 …): cycles become blocks.
        let perm = vec![1u32, 0, 2, 4, 3];
        let o = Partition::from_permutation_orbits(&perm);
        assert_eq!(o.n_blocks(), 3);
        assert_eq!(o.block_of(3), o.block_of(4));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn non_permutation_rejected() {
        Partition::from_permutation_orbits(&[0, 0, 1]);
    }

    #[test]
    fn mirror_symmetry_lumps() {
        let c = mirrored_chain();
        // Orbit seed of the mirror automorphism 0↔0, 1↔3, 2↔4.
        let seed = Partition::from_permutation_orbits(&[0, 3, 4, 1, 2]);
        let refined = coarsest_refinement(&c, &seed);
        assert!(refined.refines(&seed));
        assert!(is_ordinarily_lumpable(&c, &refined, 1e-12));
        assert_eq!(refined.n_blocks(), 3, "{refined:?}");

        let sol = c.stationary_lumped(&seed).expect("reduction exists");
        assert_eq!(sol.lumped_states, 3);
        assert_eq!(sol.full_states, 5);
        let full = c.stationary_gth();
        for (s, (&a, &b)) in sol.pi.iter().zip(full.iter()).enumerate() {
            assert!((a - b).abs() < 1e-12, "state {s}: {a} vs {b}");
        }
    }

    #[test]
    fn discrete_seed_degenerates() {
        // The identity automorphism (m = 1 row rotations) seeds singleton
        // orbits; refinement keeps them and the lump-first solve refuses.
        let c = Ctmc::new(vec![vec![(1, 1.0)], vec![(2, 2.0)], vec![(0, 3.0)]]);
        let seed = Partition::from_permutation_orbits(&[0, 1, 2]);
        assert!(seed.is_discrete());
        let refined = coarsest_refinement(&c, &seed);
        assert!(refined.is_discrete());
        assert!(c.stationary_lumped(&seed).is_none());
    }

    #[test]
    fn asymmetric_chain_splits_down_to_states() {
        // Distinct rates break every grouping: a seed that wrongly pairs
        // states must be split apart by the refinement (reaching the
        // discrete partition), not silently accepted.
        let c = Ctmc::new(vec![
            vec![(1, 1.0)],
            vec![(2, 2.0)],
            vec![(3, 3.0)],
            vec![(0, 4.0)],
        ]);
        let refined = coarsest_refinement(&c, &Partition::from_labels(&[0, 0, 1, 1]));
        assert!(refined.is_discrete(), "{refined:?}");
    }

    #[test]
    fn uniform_ring_lumps_to_one_state() {
        // The rotation automorphism of a uniform ring has a single orbit,
        // so the orbit seed is the trivial partition and the quotient is
        // one state.
        let n = 12;
        let rows: Vec<Vec<(usize, f64)>> = (0..n).map(|i| vec![((i + 1) % n, 2.5)]).collect();
        let c = Ctmc::new(rows);
        let rot: Vec<u32> = (0..n as u32).map(|i| (i + 1) % n as u32).collect();
        let seed = Partition::from_permutation_orbits(&rot);
        assert_eq!(seed, Partition::trivial(n));
        let sol = c.stationary_lumped(&seed).expect("ring collapses");
        assert_eq!(sol.lumped_states, 1);
        for &p in &sol.pi {
            assert!((p - 1.0 / n as f64).abs() < 1e-15);
        }
    }

    #[test]
    fn quotient_aggregates_stationary() {
        // A seed that is not an orbit partition ({0} | {1,2,3,4}) still
        // refines to the mirror symmetry classes, and the *block sums* of
        // the stationary vectors agree (aggregation is exact for every
        // ordinarily lumpable partition, orbit-seeded or not).
        let c = mirrored_chain();
        let refined = coarsest_refinement(&c, &Partition::from_labels(&[0, 1, 1, 1, 1]));
        assert!(is_ordinarily_lumpable(&c, &refined, 1e-12));
        assert_eq!(
            refined,
            Partition::from_labels(&[0, 1, 2, 1, 2]),
            "refinement rediscovers the mirror orbits"
        );
        let (q, lift) = c.quotient(&refined);
        let pi_q = q.stationary_gth();
        let agg = lift.aggregate(&c.stationary_gth());
        for (b, (&x, &y)) in pi_q.iter().zip(agg.iter()).enumerate() {
            assert!((x - y).abs() < 1e-12, "block {b}: {x} vs {y}");
        }
    }

    #[test]
    fn single_state_chain() {
        let c = Ctmc::new(vec![Vec::new()]);
        let p = Partition::trivial(1);
        let refined = coarsest_refinement(&c, &p);
        assert_eq!(refined.n_blocks(), 1);
        // One state is already its own block: degenerate, callers fall
        // back (the full solve is trivial anyway).
        assert!(c.stationary_lumped(&p).is_none());
        let (q, lift) = c.quotient(&p);
        assert_eq!(q.n_states(), 1);
        assert_eq!(lift.lift(&[1.0]), vec![1.0]);
    }
}
