//! The replicated-communication *pattern* chain (Theorems 3 and 4).
//!
//! A communication column between teams of sizes `R_i` and `R_{i+1}` splits
//! into `g = gcd` connected components, each consisting of copies of a
//! `u × v` pattern with `u = R_i/g`, `v = R_{i+1}/g` **coprime**.  The
//! pattern is the event net of [`crate::net::comm_pattern`]; its reachable
//! markings are in bijection with pairs of Young-diagram staircases, giving
//! the closed-form state count
//!
//! ```text
//!   S(u, v) = C(u+v−1, u−1) · v
//! ```
//!
//! (proof of Theorem 3).  With homogeneous link rates `λ` the stationary
//! law is uniform and the pattern throughput has the closed form of
//! Theorem 4, `u·v·λ / (u+v−1)`; with heterogeneous rates we solve the
//! chain numerically.

use crate::marking::{MarkingError, MarkingGraph, MarkingOptions};
use crate::net::comm_pattern;
use repstream_petri::shape::gcd;
use repstream_stochastic::special::binomial_exact;

/// Closed-form number of reachable pattern markings,
/// `S(u,v) = C(u+v−1, u−1) · v` (requires `gcd(u,v) = 1`).
pub fn state_count(u: usize, v: usize) -> u128 {
    assert!(gcd(u, v) == 1, "pattern dimensions must be coprime");
    binomial_exact((u + v - 1) as u64, (u - 1) as u64) * v as u128
}

/// Theorem 4's closed-form inner throughput of a homogeneous pattern:
/// `u·v·λ/(u+v−1)` data sets per time unit.
pub fn homogeneous_throughput(u: usize, v: usize, lambda: f64) -> f64 {
    assert!(gcd(u, v) == 1, "pattern dimensions must be coprime");
    (u * v) as f64 * lambda / (u + v - 1) as f64
}

/// Exact inner throughput of a pattern with per-link exponential rates
/// `rate[a][b]` (sender `a` → receiver `b`), by solving the pattern CTMC.
///
/// Cost grows with `S(u,v)`; errors out (`MarkingError::TooManyStates`)
/// beyond `max_states`.
pub fn pattern_throughput(rate: &[Vec<f64>], max_states: usize) -> Result<f64, MarkingError> {
    let u = rate.len();
    let v = rate[0].len();
    assert!(rate.iter().all(|r| r.len() == v), "ragged rate matrix");
    assert!(gcd(u, v) == 1, "pattern dimensions must be coprime");
    let net = comm_pattern(u, v, |a, b| rate[a][b]);
    let mg = MarkingGraph::build(
        &net,
        MarkingOptions {
            max_states,
            capacity: None,
            ..Default::default()
        },
    )?;
    let all: Vec<usize> = (0..net.n_transitions()).collect();
    Ok(mg.throughput_of(&net, &all))
}

/// Enumerated state count (BFS ground truth for [`state_count`]).
pub fn enumerated_state_count(u: usize, v: usize) -> Result<usize, MarkingError> {
    let net = comm_pattern(u, v, |_, _| 1.0);
    let mg = MarkingGraph::build(
        &net,
        MarkingOptions {
            max_states: 1 << 22,
            capacity: None,
            ..Default::default()
        },
    )?;
    Ok(mg.states.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_count_formula_matches_enumeration() {
        // The heart of Theorem 3's combinatorics.
        for (u, v) in [
            (1, 1),
            (1, 2),
            (2, 1),
            (1, 5),
            (2, 3),
            (3, 2),
            (2, 5),
            (3, 4),
            (4, 3),
            (3, 5),
            (4, 5),
            (5, 4),
        ] {
            let formula = state_count(u, v);
            let bfs = enumerated_state_count(u, v).unwrap() as u128;
            assert_eq!(formula, bfs, "S({u},{v})");
        }
    }

    #[test]
    fn state_count_examples() {
        // S(u,v) = C(u+v−1,u−1)·v.
        assert_eq!(state_count(1, 1), 1);
        assert_eq!(state_count(2, 3), 12); // C(4,1)·3
        assert_eq!(state_count(9, 7), binomial_exact(15, 8) * 7);
    }

    #[test]
    fn homogeneous_stationary_law_is_uniform() {
        // Theorem 4's proof: each state has as many predecessors as
        // successors and all rates are equal, so π is uniform.
        let net = comm_pattern(3, 4, |_, _| 2.0);
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        let pi = mg.ctmc.stationary();
        let expect = 1.0 / mg.states.len() as f64;
        for (s, &p) in pi.iter().enumerate() {
            assert!((p - expect).abs() < 1e-10, "state {s}: {p} vs {expect}");
        }
    }

    #[test]
    fn closed_form_matches_ctmc_solution() {
        for (u, v) in [(1, 1), (1, 3), (2, 3), (3, 4), (2, 5), (4, 5)] {
            for lambda in [0.5, 1.0, 3.0] {
                let rate = vec![vec![lambda; v]; u];
                let solved = pattern_throughput(&rate, 1 << 20).unwrap();
                let closed = homogeneous_throughput(u, v, lambda);
                assert!(
                    (solved - closed).abs() < 1e-9 * closed,
                    "({u},{v},λ={lambda}): {solved} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn transpose_symmetry() {
        // Swapping senders and receivers cannot change the throughput.
        let rate = vec![vec![1.0, 2.0, 3.0], vec![0.5, 1.5, 2.5]];
        let t: Vec<Vec<f64>> = (0..3)
            .map(|b| (0..2).map(|a| rate[a][b]).collect())
            .collect();
        let a = pattern_throughput(&rate, 1 << 20).unwrap();
        let b = pattern_throughput(&t, 1 << 20).unwrap();
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn heterogeneous_below_homogeneous_with_max_rate() {
        // Slower links can only hurt: throughput(rate matrix) ≤ closed
        // form at the maximum rate, ≥ at the minimum rate.
        let rate = vec![vec![1.0, 3.0], vec![2.0, 1.0], vec![1.5, 2.0]];
        let rho = pattern_throughput(&rate, 1 << 20).unwrap();
        let hi = homogeneous_throughput(3, 2, 3.0);
        let lo = homogeneous_throughput(3, 2, 1.0);
        assert!(
            rho <= hi + 1e-12 && rho >= lo - 1e-12,
            "{lo} ≤ {rho} ≤ {hi}"
        );
    }

    #[test]
    #[should_panic(expected = "coprime")]
    fn non_coprime_rejected() {
        state_count(2, 4);
    }

    #[test]
    fn exponential_halves_deterministic_symmetric_pattern() {
        // §7.5: the det/exp ratio is max(u,v)/(u+v−1); for u = v(=1 after
        // reduction by g)… use (u,v)=(3,4): exp = 12λ/6 = 2λ, det = 3λ.
        let rho = homogeneous_throughput(3, 4, 1.0);
        assert!((rho - 2.0).abs() < 1e-12);
        let det = 3.0; // min(u,v)·λ
        assert!((rho / det - 4.0 / 6.0).abs() < 1e-12); // max(u,v)/(u+v−1)
    }
}
