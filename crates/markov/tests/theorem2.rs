//! Theorem 2 end-to-end: the marking-graph CTMC of a Strict TPN must give
//! the same exponential-law throughput as long Monte-Carlo runs of the
//! event-graph simulator, and the capacity-bounded CTMC of an Overlap TPN
//! must approach the simulator's value from below as buffers grow.

use repstream_markov::marking::{MarkingGraph, MarkingOptions};
use repstream_markov::net::EventNet;
use repstream_petri::egsim::{simulate, EgSimOptions};
use repstream_petri::shape::{ExecModel, MappingShape, ResourceTable};
use repstream_petri::tpn::Tpn;
use repstream_stochastic::law::Law;

fn exp_laws(shape: &MappingShape, comp: f64, comm: f64) -> ResourceTable<Law> {
    ResourceTable::from_fns(
        shape,
        |_, _| Law::exp_mean(comp),
        |_, _, _| Law::exp_mean(comm),
    )
}

fn rates(shape: &MappingShape, comp: f64, comm: f64) -> ResourceTable<f64> {
    ResourceTable::from_fns(shape, |_, _| 1.0 / comp, |_, _, _| 1.0 / comm)
}

fn ctmc_throughput_strict(shape: &MappingShape, comp: f64, comm: f64) -> f64 {
    let tpn = Tpn::build(shape, ExecModel::Strict);
    let net = EventNet::from_tpn(&tpn, &rates(shape, comp, comm));
    let mg = MarkingGraph::build(&net, MarkingOptions::default()).expect("safe Strict TPN");
    mg.throughput_of(&net, &tpn.last_column())
}

fn sim_throughput(shape: &MappingShape, model: ExecModel, comp: f64, comm: f64) -> f64 {
    let tpn = Tpn::build(shape, model);
    let r = simulate(
        &tpn,
        &exp_laws(shape, comp, comm),
        EgSimOptions {
            datasets: 400_000,
            warmup: 40_000,
            seed: 42,
        },
    );
    r.steady_throughput
}

#[test]
fn strict_tpns_are_safe() {
    for teams in [
        vec![1, 1],
        vec![2, 1],
        vec![1, 2, 1],
        vec![2, 3],
        vec![3, 2, 2],
    ] {
        let shape = MappingShape::new(teams.clone());
        let tpn = Tpn::build(&shape, ExecModel::Strict);
        let net = EventNet::from_tpn(&tpn, &rates(&shape, 1.0, 1.0));
        let res = MarkingGraph::build(
            &net,
            MarkingOptions {
                max_states: 1 << 21,
                capacity: None,
                ..Default::default()
            },
        );
        assert!(res.is_ok(), "{teams:?}: {:?}", res.err());
    }
}

#[test]
fn strict_two_stage_ctmc_matches_simulation() {
    let shape = MappingShape::new(vec![1, 1]);
    let exact = ctmc_throughput_strict(&shape, 2.0, 1.0);
    let sim = sim_throughput(&shape, ExecModel::Strict, 2.0, 1.0);
    assert!(
        (exact - sim).abs() < 0.01 * exact,
        "ctmc {exact} vs sim {sim}"
    );
    // Sanity: must be below the deterministic Strict bound 1/(max cycle).
    // P0: 2+1 = 3, P1: 1+2 = 3 ⇒ det rate 1/3.
    assert!(exact < 1.0 / 3.0);
}

#[test]
fn strict_replicated_ctmc_matches_simulation() {
    let shape = MappingShape::new(vec![2, 1]);
    let exact = ctmc_throughput_strict(&shape, 3.0, 1.0);
    let sim = sim_throughput(&shape, ExecModel::Strict, 3.0, 1.0);
    assert!(
        (exact - sim).abs() < 0.015 * exact,
        "ctmc {exact} vs sim {sim}"
    );
}

#[test]
fn overlap_capacity_ctmc_converges_to_simulation() {
    // A unique bottleneck (stage 0, rate 1/2) keeps the downstream queues
    // subcritical, so the finite-buffer truncation converges geometrically
    // in the capacity.  (With two equally-critical stages the gap closes
    // only as O(1/√B) — that regime is exercised by the simulator tests.)
    let shape = MappingShape::new(vec![1, 1]);
    let tpn = Tpn::build(&shape, ExecModel::Overlap);
    let stage_rate = |stage: usize| if stage == 0 { 0.5 } else { 1.0 / 1.4 };
    let rate_table = ResourceTable::from_fns(&shape, |s, _| stage_rate(s), |_, _, _| 1.0);
    let net = EventNet::from_tpn(&tpn, &rate_table);
    let laws = rate_table.map(|_, &r| Law::exp_mean(1.0 / r));
    let sim = simulate(
        &tpn,
        &laws,
        EgSimOptions {
            datasets: 400_000,
            warmup: 40_000,
            seed: 42,
        },
    )
    .steady_throughput;

    let mut last = 0.0;
    for cap in [1u32, 2, 4, 8, 16] {
        let mg = MarkingGraph::build(
            &net,
            MarkingOptions {
                max_states: 1 << 21,
                capacity: Some(cap),
                ..Default::default()
            },
        )
        .unwrap();
        let rho = mg.throughput_of(&net, &tpn.last_column());
        assert!(rho >= last - 1e-12, "cap {cap} decreased throughput");
        assert!(rho <= sim * 1.02, "cap {cap}: {rho} above simulated {sim}");
        last = rho;
    }
    assert!(
        (last - sim).abs() < 0.03 * sim,
        "cap-16 ctmc {last} vs sim {sim}"
    );
}
