//! Lumping layer: property tests (lumped and full stationary vectors
//! agree to 1e-8, reusing the PR 1 cross-solver harness style) plus the
//! boundary shapes — `m = 1`, single-state chains, and symmetric marking
//! graphs of homogeneous TPNs and patterns.

use proptest::prelude::*;
use repstream_markov::ctmc::Ctmc;
use repstream_markov::lump::{coarsest_refinement, is_ordinarily_lumpable, Partition};
use repstream_markov::marking::{MarkingGraph, MarkingOptions};
use repstream_markov::net::{comm_pattern, EventNet, NetSymmetry};
use repstream_petri::shape::{ExecModel, MappingShape, ResourceTable};
use repstream_petri::tpn::Tpn;

/// A random irreducible CTMC (same construction as the cross-solver
/// harness in `solvers.rs`): a ring for strong connectivity plus random
/// chords with rates in `[0.05, 1.05]`.
fn random_irreducible(n: usize, extra: usize, seed: u64) -> Ctmc {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (i, row) in rows.iter_mut().enumerate() {
        let rate = |v: u64| (v >> 11) as f64 / (1u64 << 53) as f64 + 0.05;
        row.push(((i + 1) % n, rate(next())));
        for _ in 0..extra {
            let j = (next() as usize) % n;
            if j != i {
                row.push((j, rate(next())));
            }
        }
    }
    Ctmc::new(rows)
}

/// `k` disjoint copies of a random chain, weakly coupled through state 0
/// of each copy in a ring of copies: the copy-rotation is an exact
/// automorphism, so its orbits lump the chain `k`-fold.
fn replicated_chain(copy_states: usize, copies: usize, seed: u64) -> (Ctmc, Vec<u32>) {
    let base = random_irreducible(copy_states, 2, seed);
    let n = copy_states * copies;
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for c in 0..copies {
        let off = c * copy_states;
        for s in 0..copy_states {
            for (j, r) in base.row(s) {
                rows[off + s].push((off + j, r));
            }
        }
        // Couple copy c to copy c+1 through their local state 0.
        rows[off].push((((c + 1) % copies) * copy_states, 0.75));
    }
    // Copy-rotation permutation on states.
    let perm: Vec<u32> = (0..n)
        .map(|s| {
            let (c, l) = (s / copy_states, s % copy_states);
            (((c + 1) % copies) * copy_states + l) as u32
        })
        .collect();
    (Ctmc::new(rows), perm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Orbit-seeded lumping of a replicated chain: the refined partition
    /// is ordinarily lumpable, the quotient is `copies`-fold smaller, and
    /// the lifted stationary vector matches the full GTH solution to 1e-8.
    #[test]
    fn lumped_matches_full_on_replicated_chains(
        copy_states in 3usize..20,
        copies in 2usize..5,
        seed in 0u64..1_000_000,
    ) {
        let (c, perm) = replicated_chain(copy_states, copies, seed);
        let seed_part = Partition::from_permutation_orbits(&perm);
        let refined = coarsest_refinement(&c, &seed_part);
        prop_assert!(refined.refines(&seed_part));
        prop_assert!(is_ordinarily_lumpable(&c, &refined, 1e-9));
        let sol = c.stationary_lumped(&seed_part).expect("symmetric chain lumps");
        prop_assert_eq!(sol.full_states, c.n_states());
        prop_assert_eq!(sol.lumped_states, copy_states);
        let full = c.stationary_gth();
        for (s, (&a, &b)) in sol.pi.iter().zip(full.iter()).enumerate() {
            prop_assert!(
                (a - b).abs() < 1e-8,
                "state {}: lumped {} vs full {}", s, a, b
            );
        }
    }

    /// Aggregation consistency on *arbitrary* (non-orbit) seeds: the
    /// refinement must always land on an ordinarily lumpable partition
    /// whose quotient stationary vector equals the block sums of the full
    /// one (per-state lifting is not claimed here — that needs orbits).
    #[test]
    fn refinement_is_lumpable_and_aggregates(
        n in 4usize..60,
        extra in 1usize..3,
        blocks in 1u32..5,
        seed in 0u64..1_000_000,
    ) {
        let c = random_irreducible(n, extra, seed);
        let labels: Vec<u32> = (0..n as u32).map(|s| s % blocks).collect();
        let seed_part = Partition::from_labels(&labels);
        let refined = coarsest_refinement(&c, &seed_part);
        prop_assert!(refined.refines(&seed_part));
        prop_assert!(is_ordinarily_lumpable(&c, &refined, 1e-9));
        let (q, lift) = c.quotient(&refined);
        let pi_q = q.stationary();
        let agg = lift.aggregate(&c.stationary_gth());
        for b in 0..q.n_states() {
            prop_assert!(
                (pi_q[b] - agg[b]).abs() < 1e-8,
                "block {}: quotient {} vs aggregated {}", b, pi_q[b], agg[b]
            );
        }
    }
}

/// Rotation symmetry of the homogeneous `u × v` pattern chain: transition
/// `k ↦ k + 1 (mod uv)` with the matching place shift.
fn pattern_rotation(u: usize, v: usize) -> NetSymmetry {
    let n = u * v;
    let trans_perm: Vec<usize> = (0..n).map(|k| (k + 1) % n).collect();
    // Places 0..n are the sender cycles (k → k+u), n..2n the receiver
    // cycles (k → k+v); both families shift with the rows.
    let mut place_perm: Vec<usize> = (0..n).map(|k| (k + 1) % n).collect();
    place_perm.extend((0..n).map(|k| n + (k + 1) % n));
    NetSymmetry {
        trans_perm,
        place_perm,
    }
}

#[test]
fn homogeneous_pattern_chain_lumps() {
    for (u, v) in [(2, 3), (3, 4), (3, 5)] {
        let net = comm_pattern(u, v, |_, _| 0.7);
        let sym = pattern_rotation(u, v);
        assert!(net.symmetry_valid(&sym), "{u}x{v}: symmetry refused");
        let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
        let seed = mg
            .orbit_partition(&sym)
            .expect("rotated markings stay reachable");
        let sol = mg.ctmc.stationary_lumped(&seed).expect("pattern lumps");
        assert!(
            sol.lumped_states < sol.full_states,
            "{u}x{v}: no reduction ({} vs {})",
            sol.lumped_states,
            sol.full_states
        );
        let full = mg.ctmc.stationary_gth();
        for (s, (&a, &b)) in sol.pi.iter().zip(full.iter()).enumerate() {
            assert!((a - b).abs() < 1e-8, "{u}x{v} state {s}: {a} vs {b}");
        }
        // Throughput through the lifted vector matches the full chain.
        let all: Vec<usize> = (0..net.n_transitions()).collect();
        let lumped_rho: f64 = {
            let rates = mg.firing_rates(&net, &sol.pi);
            all.iter().map(|&t| rates[t]).sum()
        };
        let full_rho = mg.throughput_of(&net, &all);
        assert!((lumped_rho - full_rho).abs() < 1e-8 * full_rho.max(1.0));
    }
}

#[test]
fn heterogeneous_pattern_symmetry_refused() {
    // One slow link breaks the rate invariance: `symmetry_valid` must
    // refuse the structural rotation.
    let net = comm_pattern(2, 3, |a, b| if (a, b) == (0, 1) { 0.2 } else { 0.7 });
    let sym = pattern_rotation(2, 3);
    assert!(!net.symmetry_valid(&sym));
}

/// Homogeneous Strict TPN with `m = lcm(R_i) ≥ 12`: the acceptance-shape
/// case.  The lumped chain must be measurably smaller and agree with the
/// full GTH solution to 1e-8.
#[test]
fn strict_tpn_lcm12_lumps_measurably() {
    let shape = MappingShape::new(vec![3, 4]); // m = 12
    let tpn = Tpn::build(&shape, ExecModel::Strict);
    let rates = ResourceTable::from_fns(&shape, |_, _| 0.5, |_, _, _| 2.0);
    let (net, sym) = EventNet::from_tpn_with_symmetry(&tpn, &rates);
    let sym = sym.expect("homogeneous table keeps the rotation");
    let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
    let seed = mg.orbit_partition(&sym).expect("orbit seed applies");
    let sol = mg.ctmc.stationary_lumped(&seed).expect("m = 12 lumps");
    assert!(
        sol.lumped_states * 2 <= sol.full_states,
        "expected ≥ 2× reduction, got {} of {}",
        sol.lumped_states,
        sol.full_states
    );
    let full = mg.ctmc.stationary_gth();
    for (s, (&a, &b)) in sol.pi.iter().zip(full.iter()).enumerate() {
        assert!((a - b).abs() < 1e-8, "state {s}: {a} vs {b}");
    }
}

/// Heterogeneous rates on the same shape: the hint must be refused at the
/// net level and the analysis falls back to the full chain.
#[test]
fn strict_tpn_heterogeneous_hint_refused() {
    let shape = MappingShape::new(vec![3, 4]);
    let tpn = Tpn::build(&shape, ExecModel::Strict);
    let rates = ResourceTable::from_fns(&shape, |_, slot| 0.5 + slot as f64 * 0.1, |_, _, _| 2.0);
    let (_, sym) = EventNet::from_tpn_with_symmetry(&tpn, &rates);
    assert!(sym.is_none(), "heterogeneous team must refuse the rotation");
}

/// `R_i = 1` everywhere ⇒ `m = 1` ⇒ the rotation is the identity and the
/// orbit seed is discrete: the lump-first solve degenerates (returns
/// `None`) and callers take the full-chain path.
#[test]
fn all_teams_of_one_degenerates() {
    let shape = MappingShape::new(vec![1, 1, 1]);
    let tpn = Tpn::build(&shape, ExecModel::Strict);
    let rates = ResourceTable::from_fns(&shape, |_, _| 1.0, |_, _, _| 3.0);
    let (net, sym) = EventNet::from_tpn_with_symmetry(&tpn, &rates);
    let sym = sym.expect("identity rotation is rate-preserving");
    let mg = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
    let seed = mg
        .orbit_partition(&sym)
        .expect("identity maps states to themselves");
    assert!(seed.is_discrete());
    assert!(mg.ctmc.stationary_lumped(&seed).is_none());
    // The full path still solves the chain.
    let pi = mg.ctmc.stationary();
    assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
}

/// A single-state chain must survive every solver and the lumping layer.
#[test]
fn single_state_chain_every_solver() {
    let c = Ctmc::new(vec![Vec::new()]);
    assert_eq!(c.stationary(), vec![1.0]);
    assert_eq!(c.stationary_gth(), vec![1.0]);
    assert_eq!(c.stationary_gauss_seidel(1e-12, 100), vec![1.0]);
    let pw = c.stationary_power(1e-12, 100);
    assert!((pw[0] - 1.0).abs() < 1e-12);
    let p = Partition::trivial(1);
    let (q, lift) = c.quotient(&p);
    assert_eq!(q.n_states(), 1);
    assert_eq!(q.stationary(), vec![1.0]);
    assert_eq!(lift.lift(&[1.0]), vec![1.0]);
    assert!(c.stationary_lumped(&p).is_none(), "no reduction on 1 state");
}
