//! Concurrency stress for the sharded [`SharedChainCache`] (serving-layer
//! satellite): 8 threads hammering mixed hot/cold signatures must each
//! get results **bitwise identical** to a cold sequential build, exactly
//! one build per distinct signature must happen, and a build killed
//! mid-BFS by a governor interrupt must never leave a partial entry
//! behind — the next caller rebuilds and gets the exact cold bits.

use repstream_markov::cache::{ChainCache, SharedChainCache, StrictOptions};
use repstream_markov::govern::Budget;
use repstream_petri::shape::{MappingShape, ResourceTable};
use std::sync::atomic::AtomicBool;

/// Homogeneous rates (orbit-invariant → the quotient path).
fn hom_rates(shape: &MappingShape) -> ResourceTable<f64> {
    ResourceTable::from_fns(shape, |_, _| 1.0 / 2.0, |_, _, _| 1.0 / 3.0)
}

/// Heterogeneous rates (slot-dependent → the full-chain path).
fn het_rates(shape: &MappingShape) -> ResourceTable<f64> {
    ResourceTable::from_fns(
        shape,
        |stage, slot| 1.0 / (1.0 + stage as f64 + 0.25 * slot as f64),
        |file, src, dst| 1.0 / (2.0 + file as f64 + 0.5 * src as f64 + 0.125 * dst as f64),
    )
}

/// The cold sequential truth: a fresh single-threaded cache per call, so
/// nothing is ever warm.
fn cold_strict(shape: &MappingShape, rates: &ResourceTable<f64>, opts: StrictOptions) -> f64 {
    ChainCache::new()
        .strict_throughput(shape, rates, opts)
        .expect("cold build")
        .throughput
}

#[test]
fn eight_threads_mixed_hot_cold_bitwise_equal_to_cold() {
    // Mixed battery: two hot shapes everyone hammers + one cold shape
    // per thread.  Homogeneous entries take the quotient path,
    // heterogeneous ones the full chain — both flow through the shards.
    let hot: Vec<(Vec<usize>, bool)> = vec![(vec![2, 2], true), (vec![1, 2, 1], false)];
    let cold_per_thread: Vec<Vec<usize>> = vec![
        vec![1, 1],
        vec![2, 1],
        vec![1, 2],
        vec![3, 1],
        vec![1, 3],
        vec![2, 2, 1],
        vec![1, 1, 2],
        vec![3, 2],
    ];
    let opts = StrictOptions::default();

    // Expected bits, cold and sequential, before any sharing happens.
    let expect = |teams: &[usize], hom: bool| -> u64 {
        let shape = MappingShape::new(teams.to_vec());
        let rates = if hom {
            hom_rates(&shape)
        } else {
            het_rates(&shape)
        };
        cold_strict(&shape, &rates, opts).to_bits()
    };
    let hot_bits: Vec<u64> = hot.iter().map(|(t, h)| expect(t, *h)).collect();
    let cold_bits: Vec<u64> = cold_per_thread.iter().map(|t| expect(t, false)).collect();

    let cache = SharedChainCache::with_shards(8);
    std::thread::scope(|s| {
        for (tid, cold_teams) in cold_per_thread.iter().enumerate() {
            let cache = &cache;
            let hot = &hot;
            let hot_bits = &hot_bits;
            let cold_bits = &cold_bits;
            s.spawn(move || {
                for round in 0..6 {
                    // Hot shapes in a per-thread rotation so lock
                    // acquisition order differs across threads.
                    let (teams, hom) = &hot[(tid + round) % hot.len()];
                    let shape = MappingShape::new(teams.clone());
                    let rates = if *hom {
                        hom_rates(&shape)
                    } else {
                        het_rates(&shape)
                    };
                    let sol = cache
                        .strict_throughput(&shape, &rates, opts)
                        .expect("hot solve");
                    assert_eq!(
                        sol.throughput.to_bits(),
                        hot_bits[(tid + round) % hot.len()],
                        "thread {tid} round {round}: hot {teams:?} diverged from cold build"
                    );
                    // This thread's private cold shape.
                    let shape = MappingShape::new(cold_teams.clone());
                    let rates = het_rates(&shape);
                    let sol = cache
                        .strict_throughput(&shape, &rates, opts)
                        .expect("cold solve");
                    assert_eq!(
                        sol.throughput.to_bits(),
                        cold_bits[tid],
                        "thread {tid} round {round}: cold {cold_teams:?} diverged"
                    );
                }
            });
        }
    });

    // One BFS per distinct signature, ever: 2 hot + 8 cold shapes.
    let stats = cache.stats();
    assert_eq!(
        stats.strict_misses,
        hot.len() + cold_per_thread.len(),
        "every distinct signature builds exactly once"
    );
    // 8 threads × 6 rounds × 2 solves = 96 total; the rest were warm.
    assert_eq!(stats.strict_hits + stats.strict_misses, 96);
    assert!(stats.strict_hits >= 96 - 10);
}

#[test]
fn pattern_chains_share_across_threads_bitwise() {
    // The (u, v) pattern cache keys on dimensions only; the solve runs
    // per rate matrix.  All threads ask for mixed (u, v) with
    // thread-dependent rates and must match their own cold build.
    // Pattern dimensions must be coprime (the u×v inner chain).
    let dims = [(1usize, 2usize), (1, 3), (2, 3), (3, 2)];
    let rate_for = |u: usize, v: usize, salt: usize| -> Vec<Vec<f64>> {
        (0..u)
            .map(|i| {
                (0..v)
                    .map(|j| 1.0 + (i * v + j + salt) as f64 / 8.0)
                    .collect()
            })
            .collect()
    };
    let cache = SharedChainCache::new();
    std::thread::scope(|s| {
        for tid in 0..8 {
            let cache = &cache;
            s.spawn(move || {
                for round in 0..4 {
                    let (u, v) = dims[(tid + round) % dims.len()];
                    let rate = rate_for(u, v, tid);
                    let warm = cache
                        .pattern_throughput(&rate, 1 << 16)
                        .expect("pattern solve");
                    let cold = ChainCache::new()
                        .pattern_throughput(&rate, 1 << 16)
                        .expect("cold pattern");
                    assert_eq!(
                        warm.to_bits(),
                        cold.to_bits(),
                        "thread {tid} ({u}×{v}) diverged from cold"
                    );
                }
            });
        }
    });
    assert_eq!(cache.stats().pattern_misses, dims.len());
}

#[test]
fn interrupted_build_leaves_no_partial_entry() {
    static CANCELLED: AtomicBool = AtomicBool::new(true);

    let shape = MappingShape::new(vec![2, 2, 1]);
    let rates = het_rates(&shape);
    let cache = SharedChainCache::new();

    // A pre-cancelled budget interrupts the marking BFS at its first
    // governor checkpoint — mid-build, with the shard lock held.
    let doomed = StrictOptions {
        budget: Budget::UNLIMITED.cancelled_by(&CANCELLED),
        ..Default::default()
    };
    for _ in 0..3 {
        let err = cache
            .strict_throughput(&shape, &rates, doomed)
            .expect_err("pre-cancelled build must not succeed");
        assert!(
            err.interrupt().is_some(),
            "failure must be the governor interrupt, got {err:?}"
        );
    }
    // Nothing was served from cache: every doomed attempt re-entered the
    // builder (a partial entry would have turned attempt 2+ into hits).
    assert_eq!(cache.stats().strict_hits, 0);

    // The same signature, unlimited: a full rebuild, bitwise the cold
    // sequential answer — the poisoned attempts left nothing behind.
    let sol = cache
        .strict_throughput(&shape, &rates, StrictOptions::default())
        .expect("rebuild after interrupts");
    let cold = cold_strict(&shape, &rates, StrictOptions::default());
    assert_eq!(sol.throughput.to_bits(), cold.to_bits());

    // And now it is genuinely cached: a repeat is a warm hit with the
    // same bits.
    let again = cache
        .strict_throughput(&shape, &rates, StrictOptions::default())
        .expect("warm hit");
    assert_eq!(again.throughput.to_bits(), cold.to_bits());
    assert!(again.cache_hit, "second unlimited solve must be warm");
    assert!(cache.stats().strict_hits >= 1);
}

#[test]
fn shard_counts_round_up_and_solve_identically() {
    let shape = MappingShape::new(vec![2, 1]);
    let rates = hom_rates(&shape);
    let expected = cold_strict(&shape, &rates, StrictOptions::default()).to_bits();
    for shards in [0, 1, 3, 16, 33] {
        let cache = SharedChainCache::with_shards(shards);
        assert!(cache.shards().is_power_of_two(), "shards={shards}");
        let sol = cache
            .strict_throughput(&shape, &rates, StrictOptions::default())
            .expect("solve");
        assert_eq!(sol.throughput.to_bits(), expected, "shards={shards}");
    }
}
