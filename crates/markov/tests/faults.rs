//! The deterministic fault matrix (`--features fault-inject`).
//!
//! Every injected failure — spill writes dying at the first / second /
//! mid-build operation, spill reads dying, forced solver stagnation,
//! budget exhaustion at every BFS level — must surface as a structured
//! error (`MarkingError::SpillIo`, `Interrupt`), never a panic, and
//! must leak no spill temp file.  And with no plan installed (or a plan
//! that never fires) the feature-compiled build must be bitwise
//! identical to a run without the hooks.
//!
//! The fault plan is process-global, so every test serializes on one
//! mutex (poison-tolerant: an assertion failure in one test must not
//! wedge the rest).

#![cfg(feature = "fault-inject")]

use repstream_markov::ctmc::{Solver, SolverChoice};
use repstream_markov::fault::{self, FaultPlan};
use repstream_markov::govern::{Budget, InterruptReason, Phase};
use repstream_markov::marking::{
    ArenaCompression, MarkingError, MarkingGraph, MarkingOptions, QuotientGraph, SpillOp,
};
use repstream_markov::net::EventNet;
use repstream_petri::shape::{ExecModel, MappingShape, ResourceTable};
use repstream_petri::tpn::Tpn;
use std::sync::Mutex;

/// Serializes the tests (the installed plan is process-global state).
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// A guard that holds the lock and clears the plan on drop, so a failed
/// test never leaves its plan armed for the next one.
struct Armed(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

impl Armed {
    fn install(plan: FaultPlan) -> Self {
        let g = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        fault::install(plan);
        Armed(g)
    }

    fn clear() -> Self {
        let g = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        fault::clear();
        Armed(g)
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        fault::clear();
    }
}

fn net_for(teams: &[usize]) -> (EventNet, repstream_markov::net::NetSymmetry) {
    let shape = MappingShape::new(teams.to_vec());
    let tpn = Tpn::build(&shape, ExecModel::Strict);
    let rates = ResourceTable::from_fns(&shape, |_, _| 0.5, |_, _, _| 2.0);
    let (net, sym) = EventNet::from_tpn_with_symmetry(&tpn, &rates);
    (net, sym.expect("homogeneous table keeps the row rotation"))
}

/// Spill-forcing options: a 64-byte resident limit parks payload on
/// disk almost immediately, so spill I/O runs from the first levels.
fn spill_opts() -> MarkingOptions {
    MarkingOptions {
        max_states: 1 << 22,
        capacity: None,
        arena_compression: ArenaCompression::Auto,
        interner_spill: true,
        spill_limit: 64,
        ..Default::default()
    }
}

/// A private spill dir for leak checks: anything left in it after the
/// build (and its drop) is a leaked temp file.
struct SpillDir(std::path::PathBuf);

impl SpillDir {
    fn set(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("repstream-faults-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create spill dir");
        std::env::set_var("REPSTREAM_SPILL_DIR", &dir);
        SpillDir(dir)
    }

    fn assert_no_leaks(&self, what: &str) {
        let leaked: Vec<_> = std::fs::read_dir(&self.0)
            .expect("read spill dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name())
            .collect();
        assert!(leaked.is_empty(), "{what}: leaked spill files {leaked:?}");
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        std::env::remove_var("REPSTREAM_SPILL_DIR");
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Spill writes dying at the first, second, and a mid-build operation:
/// each surfaces as a structured `SpillIo` write error with the
/// injected source, and no temp file survives.
#[test]
fn spill_write_faults_surface_cleanly() {
    for n in [0u64, 1, 200] {
        let _armed = Armed::install(FaultPlan {
            spill_write: Some(n),
            ..Default::default()
        });
        let dir = SpillDir::set(&format!("write-{n}"));
        let (net, sym) = net_for(&[4, 5]);
        for quotient in [false, true] {
            let what = format!("spill-write:{n} quotient={quotient}");
            let err = if quotient {
                QuotientGraph::build(&net, &sym, spill_opts()).unwrap_err()
            } else {
                MarkingGraph::build(&net, spill_opts()).unwrap_err()
            };
            match err {
                MarkingError::SpillIo(e) => {
                    assert_eq!(e.op, SpillOp::Write, "{what}");
                    assert!(
                        e.source.to_string().contains("injected"),
                        "{what}: unexpected source {}",
                        e.source
                    );
                }
                other => panic!("{what}: expected SpillIo, got {other:?}"),
            }
            // Re-arm for the quotient pass (the counter already ticked).
            fault::install(FaultPlan {
                spill_write: Some(n),
                ..Default::default()
            });
        }
        dir.assert_no_leaks(&format!("spill-write:{n}"));
    }
}

/// A spill read dying mid-probe: the poison drains at the next level
/// boundary as a structured `SpillIo` read error.
#[test]
fn spill_read_fault_surfaces_cleanly() {
    let _armed = Armed::install(FaultPlan {
        spill_read: Some(0),
        ..Default::default()
    });
    let dir = SpillDir::set("read-0");
    let (net, _) = net_for(&[4, 5]);
    match MarkingGraph::build(&net, spill_opts()).unwrap_err() {
        MarkingError::SpillIo(e) => assert_eq!(e.op, SpillOp::Read),
        other => panic!("expected SpillIo read, got {other:?}"),
    }
    dir.assert_no_leaks("spill-read:0");
}

/// Forced stagnation at the first governed-solver checkpoint: the solve
/// returns `Interrupt { reason: SolverStall }` instead of spinning.
#[test]
fn solver_stall_fault_interrupts_the_solve() {
    let _armed = Armed::clear();
    let (net, sym) = net_for(&[3, 4]);
    let qg = QuotientGraph::build(&net, &sym, MarkingOptions::default()).unwrap();
    fault::install(FaultPlan {
        solver_stall: Some(0),
        ..Default::default()
    });
    let err = qg
        .ctmc
        .stationary_solve_governed(SolverChoice::Force(Solver::GaussSeidel), &Budget::UNLIMITED)
        .unwrap_err();
    assert_eq!(err.reason, InterruptReason::SolverStall);
    assert_eq!(err.progress.phase, Phase::Solve);
}

/// Budget exhaustion forced at every BFS level of the 4×5 quotient in
/// turn: each firing reports exactly the planned level, and a plan past
/// the last level never fires.
#[test]
fn budget_fires_at_each_bfs_level() {
    let _armed = Armed::clear();
    let (net, sym) = net_for(&[4, 5]);
    let mut completed_at = None;
    for level in 0..200u64 {
        fault::install(FaultPlan {
            budget_level: Some(level),
            ..Default::default()
        });
        match QuotientGraph::build(&net, &sym, MarkingOptions::default()) {
            Err(MarkingError::Interrupted(i)) => {
                assert_eq!(i.progress.phase, Phase::QuotientBfs, "level {level}");
                assert_eq!(i.progress.levels as u64, level, "level {level}");
            }
            Err(other) => panic!("level {level}: expected an interrupt, got {other:?}"),
            Ok(_) => {
                completed_at = Some(level);
                break;
            }
        }
    }
    let done = completed_at.expect("some level count completes the 4x5 build");
    assert!(done > 3, "the 4x5 BFS has more than {done} levels");
}

/// With no plan installed — or a plan whose trigger is never reached —
/// the hooks are inert: states, rates, and the stationary solve are
/// bitwise identical to an unfaulted run.
#[test]
fn no_fault_run_is_bitwise_identical() {
    let _armed = Armed::clear();
    let (net, sym) = net_for(&[4, 5]);
    let reference = QuotientGraph::build(&net, &sym, spill_opts()).unwrap();
    let pi_ref = reference.ctmc.stationary();

    fault::install(FaultPlan {
        spill_write: Some(u64::MAX),
        spill_read: Some(u64::MAX),
        solver_stall: Some(u64::MAX),
        budget_level: Some(10_000),
    });
    let armed_run = QuotientGraph::build(&net, &sym, spill_opts()).unwrap();
    assert_eq!(armed_run.n_states(), reference.n_states());
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for s in 0..reference.n_states() {
        assert_eq!(
            armed_run.reps.read_into(s, &mut a),
            reference.reps.read_into(s, &mut b),
            "representative {s}"
        );
        for (x, y) in armed_run
            .ctmc
            .row_rates(s)
            .iter()
            .zip(reference.ctmc.row_rates(s))
        {
            assert_eq!(x.to_bits(), y.to_bits(), "rate bits of {s}");
        }
    }
    let pi_armed = armed_run.ctmc.stationary();
    for (i, (x, y)) in pi_armed.iter().zip(pi_ref.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "pi[{i}]");
    }
}

/// `REPSTREAM_FAULT` env parsing end to end (under the same lock: the
/// plan slot and the env var are both process-global).
#[test]
fn env_install_parses_and_arms() {
    let _armed = Armed::clear();
    std::env::set_var("REPSTREAM_FAULT", "budget-level:0");
    assert_eq!(fault::install_from_env(), Ok(true));
    let (net, sym) = net_for(&[2, 3]);
    match QuotientGraph::build(&net, &sym, MarkingOptions::default()) {
        Err(MarkingError::Interrupted(i)) => assert_eq!(i.progress.levels, 0),
        other => panic!("expected a level-0 interrupt, got {other:?}"),
    }
    std::env::set_var("REPSTREAM_FAULT", "flux-capacitor:1");
    assert!(fault::install_from_env().is_err());
    std::env::remove_var("REPSTREAM_FAULT");
    fault::clear();
    assert_eq!(fault::install_from_env(), Ok(false));
}
