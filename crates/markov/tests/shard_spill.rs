//! The sharded interner and the arena spill region are storage-only:
//! for every shard count, spill mode, and thread count, the Theorem 2
//! quotient and the full marking graph must be bitwise identical to the
//! sequential single-shard resident reference — same states in the same
//! BFS order, same representative bytes, same orbit sizes, same enabled
//! sets, and the same chain bits through a rate refill.

use repstream_markov::marking::{ArenaCompression, MarkingGraph, MarkingOptions, QuotientGraph};
use repstream_markov::net::EventNet;
use repstream_petri::shape::{ExecModel, MappingShape, ResourceTable};
use repstream_petri::tpn::Tpn;

/// A spill limit tiny enough that every build parks payload bytes on
/// disk almost immediately — the point is to exercise the file path, not
/// to model a realistic budget.
const TINY_SPILL: usize = 256;

fn opts(threads: usize, shards: usize, spill: bool) -> MarkingOptions {
    MarkingOptions {
        max_states: 1 << 22,
        capacity: None,
        threads,
        arena_compression: ArenaCompression::Auto,
        interner_shards: shards,
        interner_spill: spill,
        spill_limit: if spill { TINY_SPILL } else { 0 },
        ..Default::default()
    }
}

fn net_for(teams: &[usize]) -> (EventNet, repstream_markov::net::NetSymmetry) {
    let shape = MappingShape::new(teams.to_vec());
    let tpn = Tpn::build(&shape, ExecModel::Strict);
    let rates = ResourceTable::from_fns(&shape, |_, _| 0.5, |_, _, _| 2.0);
    let (net, sym) = EventNet::from_tpn_with_symmetry(&tpn, &rates);
    (net, sym.expect("homogeneous table keeps the row rotation"))
}

fn assert_quotients_bitwise(a: &QuotientGraph, b: &QuotientGraph, what: &str) {
    assert_eq!(a.n_states(), b.n_states(), "{what}: state count");
    assert_eq!(a.full_states(), b.full_states(), "{what}: full states");
    assert_eq!(a.orbit_sizes(), b.orbit_sizes(), "{what}: orbit sizes");
    let (mut buf_a, mut buf_b) = (Vec::new(), Vec::new());
    for s in 0..b.n_states() {
        assert_eq!(
            a.reps.read_into(s, &mut buf_a),
            b.reps.read_into(s, &mut buf_b),
            "{what}: representative {s}"
        );
        assert_eq!(a.enabled(s), b.enabled(s), "{what}: enabled {s}");
    }
    assert_eq!(a.ctmc.n_states(), b.ctmc.n_states(), "{what}: ctmc states");
    for s in 0..b.ctmc.n_states() {
        assert_eq!(
            a.ctmc.row_targets(s),
            b.ctmc.row_targets(s),
            "{what}: targets of {s}"
        );
        for (x, y) in a.ctmc.row_rates(s).iter().zip(b.ctmc.row_rates(s)) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: rate bits of {s}");
        }
    }
}

/// The full shards × spill × threads matrix on the 4×5 quotient against
/// the sequential single-shard resident reference.
#[test]
fn quotient_shard_spill_matrix_4x5_is_bitwise_identical() {
    let (net, sym) = net_for(&[4, 5]);
    let reference = QuotientGraph::build(&net, &sym, opts(1, 1, false)).unwrap();
    for shards in [1usize, 4, 16] {
        for spill in [false, true] {
            for threads in [1usize, 2, 4] {
                let what = format!("shards {shards} spill {spill} threads {threads}");
                let qg = QuotientGraph::build(&net, &sym, opts(threads, shards, spill)).unwrap();
                if spill {
                    assert!(
                        qg.arena_stats().spill_bytes > 0,
                        "{what}: a {TINY_SPILL}-byte limit must actually spill"
                    );
                }
                assert_quotients_bitwise(&qg, &reference, &what);
                let doubled: Vec<f64> = net.rates.iter().map(|r| r * 2.0).collect();
                let (ra, rb) = (
                    qg.ctmc_with_trans_rates(&doubled),
                    reference.ctmc_with_trans_rates(&doubled),
                );
                for s in 0..rb.n_states() {
                    for (x, y) in ra.row_rates(s).iter().zip(rb.row_rates(s)) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{what} (refill): rate bits");
                    }
                }
            }
        }
    }
}

/// A reduced sweep on the larger 5×6 quotient (debug builds are slow;
/// the release CI smoke covers the heavy matrix): max shards, spill on
/// and off, sequential and 2-thread BFS.
#[test]
fn quotient_shard_spill_5x6_is_bitwise_identical() {
    let (net, sym) = net_for(&[5, 6]);
    let reference = QuotientGraph::build(&net, &sym, opts(1, 1, false)).unwrap();
    for (threads, spill) in [(1usize, true), (2, false), (2, true)] {
        let what = format!("5x6 shards 16 spill {spill} threads {threads}");
        let qg = QuotientGraph::build(&net, &sym, opts(threads, 16, spill)).unwrap();
        if spill {
            assert!(qg.arena_stats().spill_bytes > 0, "{what}: must spill");
        }
        assert_quotients_bitwise(&qg, &reference, &what);
    }
}

/// The plain (non-lumped) marking graph across the same knobs on 4×5.
#[test]
fn full_graph_shard_spill_is_bitwise_identical() {
    let (net, _) = net_for(&[4, 5]);
    let reference = MarkingGraph::build(&net, opts(1, 1, false)).unwrap();
    let (mut buf_a, mut buf_b) = (Vec::new(), Vec::new());
    for shards in [4usize, 16] {
        for spill in [false, true] {
            for threads in [1usize, 4] {
                let what = format!("full shards {shards} spill {spill} threads {threads}");
                let mg = MarkingGraph::build(&net, opts(threads, shards, spill)).unwrap();
                if spill {
                    assert!(mg.arena_stats().spill_bytes > 0, "{what}: must spill");
                }
                assert_eq!(mg.n_states(), reference.n_states(), "{what}");
                for s in 0..reference.n_states() {
                    assert_eq!(
                        mg.states.read_into(s, &mut buf_a),
                        reference.states.read_into(s, &mut buf_b),
                        "{what}: marking {s}"
                    );
                    assert_eq!(mg.enabled(s), reference.enabled(s), "{what}: enabled {s}");
                }
                for s in 0..reference.ctmc.n_states() {
                    assert_eq!(
                        mg.ctmc.row_targets(s),
                        reference.ctmc.row_targets(s),
                        "{what}: targets of {s}"
                    );
                    for (x, y) in mg.ctmc.row_rates(s).iter().zip(reference.ctmc.row_rates(s)) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{what}: rate bits of {s}");
                    }
                }
            }
        }
    }
}
