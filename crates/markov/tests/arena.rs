//! Delta-compressed marking arenas are storage-only: for every thread
//! count and compression mode, the full marking graph and the Theorem 2
//! quotient must be bitwise identical to the sequential flat-arena
//! reference — same states in the same BFS order, same representative
//! bytes, same enabled sets, and the same chain bits both at build time
//! and through a `ctmc_with_trans_rates` refill.

use repstream_markov::marking::{ArenaCompression, MarkingGraph, MarkingOptions, QuotientGraph};
use repstream_markov::net::EventNet;
use repstream_petri::shape::{ExecModel, MappingShape, ResourceTable};
use repstream_petri::tpn::Tpn;

fn opts(threads: usize, compression: ArenaCompression) -> MarkingOptions {
    MarkingOptions {
        max_states: 1 << 22,
        capacity: None,
        threads,
        arena_compression: compression,
        ..Default::default()
    }
}

fn net_for(teams: &[usize]) -> (EventNet, repstream_markov::net::NetSymmetry) {
    let shape = MappingShape::new(teams.to_vec());
    let tpn = Tpn::build(&shape, ExecModel::Strict);
    let rates = ResourceTable::from_fns(&shape, |_, _| 0.5, |_, _, _| 2.0);
    let (net, sym) = EventNet::from_tpn_with_symmetry(&tpn, &rates);
    (net, sym.expect("homogeneous table keeps the row rotation"))
}

fn assert_rows_bitwise(
    a: &repstream_markov::ctmc::Ctmc,
    b: &repstream_markov::ctmc::Ctmc,
    what: &str,
) {
    assert_eq!(a.n_states(), b.n_states(), "{what}: state count");
    for s in 0..a.n_states() {
        assert_eq!(a.row_targets(s), b.row_targets(s), "{what}: targets of {s}");
        for (x, y) in a.row_rates(s).iter().zip(b.row_rates(s)) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: rate bits of {s}");
        }
    }
}

/// Quotient builds across the {1, 2, 4} threads × {Off, On} compression
/// matrix against the sequential flat reference.
#[test]
fn quotient_matrix_is_bitwise_deterministic() {
    let (net, sym) = net_for(&[3, 4]);
    let reference = QuotientGraph::build(&net, &sym, opts(1, ArenaCompression::Off)).unwrap();
    assert!(!reference.reps.is_compressed());
    let (mut buf_a, mut buf_b) = (Vec::new(), Vec::new());
    for threads in [1usize, 2, 4] {
        for compression in [ArenaCompression::Off, ArenaCompression::On] {
            let what = format!("threads {threads} {compression:?}");
            let qg = QuotientGraph::build(&net, &sym, opts(threads, compression)).unwrap();
            assert_eq!(
                qg.reps.is_compressed(),
                compression == ArenaCompression::On,
                "{what}: forced mode must stick"
            );
            assert_eq!(qg.n_states(), reference.n_states(), "{what}");
            assert_eq!(qg.full_states(), reference.full_states(), "{what}");
            assert_eq!(qg.orbit_sizes(), reference.orbit_sizes(), "{what}");
            for s in 0..reference.n_states() {
                assert_eq!(
                    qg.reps.read_into(s, &mut buf_a),
                    reference.reps.read_into(s, &mut buf_b),
                    "{what}: representative {s}"
                );
                assert_eq!(qg.enabled(s), reference.enabled(s), "{what}: enabled {s}");
            }
            assert_rows_bitwise(&qg.ctmc, &reference.ctmc, &what);
            // A refill with fresh per-transition rates must also match.
            let doubled: Vec<f64> = net.rates.iter().map(|r| r * 2.0).collect();
            assert_rows_bitwise(
                &qg.ctmc_with_trans_rates(&doubled),
                &reference.ctmc_with_trans_rates(&doubled),
                &format!("{what} (refill)"),
            );
        }
    }
}

/// The plain (non-lumped) marking graph across the same matrix.
#[test]
fn full_graph_matrix_is_bitwise_deterministic() {
    let (net, _) = net_for(&[3, 4]);
    let reference = MarkingGraph::build(&net, opts(1, ArenaCompression::Off)).unwrap();
    assert!(!reference.states.is_compressed());
    let (mut buf_a, mut buf_b) = (Vec::new(), Vec::new());
    for threads in [1usize, 2, 4] {
        for compression in [ArenaCompression::Off, ArenaCompression::On] {
            let what = format!("threads {threads} {compression:?}");
            let mg = MarkingGraph::build(&net, opts(threads, compression)).unwrap();
            assert_eq!(
                mg.states.is_compressed(),
                compression == ArenaCompression::On,
                "{what}: forced mode must stick"
            );
            assert_eq!(mg.n_states(), reference.n_states(), "{what}");
            for s in 0..reference.n_states() {
                assert_eq!(
                    mg.states.read_into(s, &mut buf_a),
                    reference.states.read_into(s, &mut buf_b),
                    "{what}: marking {s}"
                );
                assert_eq!(mg.enabled(s), reference.enabled(s), "{what}: enabled {s}");
            }
            assert_rows_bitwise(&mg.ctmc, &reference.ctmc, &what);
            let doubled: Vec<f64> = net.rates.iter().map(|r| r * 2.0).collect();
            assert_rows_bitwise(
                &mg.ctmc_with_trans_rates(&doubled),
                &reference.ctmc_with_trans_rates(&doubled),
                &format!("{what} (refill)"),
            );
        }
    }
}
