//! Direct quotient construction vs full-then-lump: the canonical-marking
//! BFS must produce **the identical chain** — state for state, edge for
//! edge, rate for rate, bit for bit — that building the full Theorem 2
//! chain and lumping it through `orbit_partition` + `Ctmc::quotient`
//! produces, while never materializing the full graph.

use repstream_markov::marking::{MarkingGraph, MarkingOptions, QuotientGraph};
use repstream_markov::net::{EventNet, NetSymmetry};
use repstream_petri::shape::{ExecModel, MappingShape, ResourceTable};
use repstream_petri::tpn::Tpn;

fn homogeneous(shape: &MappingShape, comp: f64, comm: f64) -> ResourceTable<f64> {
    ResourceTable::from_fns(shape, |_, _| comp, |_, _, _| comm)
}

fn strict_net(teams: &[usize], comp: f64, comm: f64) -> (Tpn, EventNet, Option<NetSymmetry>) {
    let shape = MappingShape::new(teams.to_vec());
    let tpn = Tpn::build(&shape, ExecModel::Strict);
    let rates = homogeneous(&shape, comp, comm);
    let (net, sym) = EventNet::from_tpn_with_symmetry(&tpn, &rates);
    (tpn, net, sym)
}

/// Assert two chains are bitwise identical (structure and rates).
fn assert_chains_identical(a: &repstream_markov::Ctmc, b: &repstream_markov::Ctmc, context: &str) {
    assert_eq!(a.n_states(), b.n_states(), "{context}: state counts");
    assert_eq!(a.nnz(), b.nnz(), "{context}: edge counts");
    for s in 0..a.n_states() {
        assert_eq!(a.row_targets(s), b.row_targets(s), "{context}: row {s}");
        let (ra, rb) = (a.row_rates(s), b.row_rates(s));
        for (e, (x, y)) in ra.iter().zip(rb.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: rate of edge {e} in row {s}: {x} vs {y}"
            );
        }
    }
}

/// The tentpole contract: on homogeneous Strict TPNs the direct quotient
/// is state-for-state and rate-for-rate identical to full-then-lump.
#[test]
fn direct_quotient_equals_full_then_lump_bitwise() {
    for teams in [
        vec![2usize, 2],
        vec![2, 3],
        vec![3, 4],
        vec![2, 3, 4],
        vec![1, 2, 3, 1],
        vec![2, 4],
    ] {
        let (_, net, sym) = strict_net(&teams, 0.5, 2.0);
        let sym = sym.expect("homogeneous rates keep the rotation");
        let opts = MarkingOptions::default();

        // Full-then-lump: full BFS, orbit propagation, quotient.
        let mg = MarkingGraph::build(&net, opts).expect("Strict TPN is safe");
        let seed = mg.orbit_partition(&sym).expect("orbit seed applies");
        let (lumped, lift) = mg.ctmc.quotient(&seed);

        // Direct: canonical-marking BFS, no full graph.
        let qg = QuotientGraph::build(&net, &sym, opts).expect("same net");

        let ctx = format!("teams {teams:?}");
        assert_chains_identical(&qg.ctmc, &lumped, &ctx);

        // Orbit bookkeeping matches the full partition's block sizes, and
        // every stored representative is the block's first full state.
        assert_eq!(qg.full_states(), mg.n_states(), "{ctx}");
        for b in 0..qg.n_states() {
            assert_eq!(qg.orbit_sizes()[b] as usize, lift.block_size(b), "{ctx}");
            let first = (0..mg.n_states())
                .find(|&s| seed.block_of(s) == b)
                .expect("non-empty block");
            assert_eq!(
                qg.reps.get(b),
                mg.states.get(first),
                "{ctx}: representative of block {b}"
            );
            assert_eq!(qg.enabled(b), mg.enabled(first), "{ctx}: enabled of {b}");
        }
    }
}

/// The lifted stationary vector of the direct quotient agrees with the
/// full-chain solve to 1e-12, and the throughput (an orbit-closed
/// transition-set sum) matches exactly as tightly.
#[test]
fn direct_quotient_stationary_agrees_with_full_solve() {
    for teams in [vec![2usize, 3], vec![3, 4], vec![2, 3, 4]] {
        let (tpn, net, sym) = strict_net(&teams, 0.5, 2.0);
        let sym = sym.expect("homogeneous rates keep the rotation");
        let opts = MarkingOptions::default();

        let mg = MarkingGraph::build(&net, opts).unwrap();
        let pi_full = mg.ctmc.stationary();

        let qg = QuotientGraph::build(&net, &sym, opts).unwrap();
        let pi_q = qg.ctmc.stationary();

        // Per-state agreement through the full partition's lift.
        let seed = mg.orbit_partition(&sym).unwrap();
        let (_, lift) = mg.ctmc.quotient(&seed);
        let lifted = lift.lift(&pi_q);
        for (s, (&a, &b)) in lifted.iter().zip(pi_full.iter()).enumerate() {
            assert!(
                (a - b).abs() < 1e-12,
                "teams {teams:?} state {s}: lifted {a} vs full {b}"
            );
        }

        // Throughput over the last column.
        let last = tpn.last_column();
        let direct = qg.throughput_of(&net, &last);
        let full = mg.throughput_of(&net, &last);
        assert!(
            (direct - full).abs() <= 1e-12 * full,
            "teams {teams:?}: direct {direct} vs full {full}"
        );

        // The size-only lift of the direct path carries the same
        // bookkeeping as the full one.
        let ql = qg.lift();
        assert!(!ql.has_state_map());
        assert_eq!(ql.n_states(), lift.n_states());
        assert_eq!(ql.n_blocks(), lift.n_blocks());
        for b in 0..ql.n_blocks() {
            assert_eq!(ql.block_size(b), lift.block_size(b));
            assert_eq!(
                ql.member_probability(&pi_q, b).to_bits(),
                lift.member_probability(&pi_q, b).to_bits()
            );
        }
    }
}

/// `m = 1` (no replication): the rotation is the identity, every orbit is
/// a singleton, and the quotient BFS degenerates to the plain marking BFS
/// bit for bit.
#[test]
fn m1_degenerates_to_the_plain_bfs_bitwise() {
    let (_, net, sym) = strict_net(&[1, 1, 1], 0.5, 2.0);
    let sym = sym.expect("identity rotation is always valid");
    let opts = MarkingOptions::default();
    let mg = MarkingGraph::build(&net, opts).unwrap();
    let qg = QuotientGraph::build(&net, &sym, opts).unwrap();
    assert_chains_identical(&qg.ctmc, &mg.ctmc, "teams [1,1,1]");
    assert_eq!(qg.full_states(), mg.n_states());
    assert!(qg.orbit_sizes().iter().all(|&k| k == 1));
    for s in 0..mg.n_states() {
        assert_eq!(qg.reps.get(s), mg.states.get(s), "state {s}");
        assert_eq!(qg.enabled(s), mg.enabled(s), "state {s}");
    }
}

/// The peak interned-state count of the direct build is `full / m`: the
/// state budget only has to cover the representatives, so shapes whose
/// full chain busts the budget still complete.
#[test]
fn budget_covers_representatives_not_the_full_chain() {
    let teams = vec![3usize, 4];
    let (tpn, net, sym) = strict_net(&teams, 0.5, 2.0);
    let sym = sym.expect("homogeneous rates keep the rotation");
    let m = tpn.rows();
    let full = MarkingGraph::build(&net, MarkingOptions::default()).unwrap();
    let quotient_states = full.n_states() / m;

    // A budget below the full count but above the orbit count: the full
    // BFS fails, the direct quotient completes.
    let tight = MarkingOptions {
        max_states: quotient_states + 1,
        capacity: None,
        ..Default::default()
    };
    assert!(MarkingGraph::build(&net, tight).is_err());
    let qg = QuotientGraph::build(&net, &sym, tight).unwrap();
    assert_eq!(
        qg.n_states(),
        quotient_states,
        "reduction is exactly m-fold"
    );

    // One fewer representative and the direct build fails too.
    let too_tight = MarkingOptions {
        max_states: quotient_states - 1,
        capacity: None,
        ..Default::default()
    };
    assert!(QuotientGraph::build(&net, &sym, too_tight).is_err());
}

/// Refilled quotient chains are bitwise identical to cold builds with the
/// same (orbit-invariant) rate table.
#[test]
fn quotient_refill_is_bitwise_cold() {
    let shape = MappingShape::new(vec![2, 3]);
    let tpn = Tpn::build(&shape, ExecModel::Strict);
    let opts = MarkingOptions::default();
    let warm = {
        let rates = homogeneous(&shape, 0.5, 2.0);
        let (net, sym) = EventNet::from_tpn_with_symmetry(&tpn, &rates);
        QuotientGraph::build(&net, &sym.unwrap(), opts).unwrap()
    };
    for (comp, comm) in [(0.25, 1.0), (2.0, 0.125), (1.0, 1.0)] {
        let rates = homogeneous(&shape, comp, comm);
        let (net, sym) = EventNet::from_tpn_with_symmetry(&tpn, &rates);
        let cold = QuotientGraph::build(&net, &sym.unwrap(), opts).unwrap();
        let refilled = warm.ctmc_with_trans_rates(&net.rates);
        assert_chains_identical(&refilled, &cold.ctmc, &format!("λ ({comp},{comm})"));
        let last = tpn.last_column();
        let a = warm.throughput_with(&refilled, &net.rates, &last);
        let b = cold.throughput_of(&net, &last);
        assert_eq!(a.to_bits(), b.to_bits(), "λ ({comp},{comm})");
    }
}

/// The chunk-parallel frontier BFS of the quotient build is **bitwise
/// identical** to the sequential scan for every thread count: chain
/// (targets and rate bits), representatives, enabled sets, orbit sizes,
/// the edge→transitions refill map, and the solved throughput.
#[test]
fn parallel_quotient_build_is_bitwise_sequential() {
    for teams in [vec![2usize, 3], vec![3, 4], vec![2, 3, 4]] {
        let (tpn, net, sym) = strict_net(&teams, 0.5, 2.0);
        let sym = sym.expect("homogeneous rates keep the rotation");
        let seq = QuotientGraph::build(
            &net,
            &sym,
            MarkingOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let last = tpn.last_column();
        for threads in [2usize, 4, 8] {
            let par = QuotientGraph::build(
                &net,
                &sym,
                MarkingOptions {
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            let ctx = format!("teams {teams:?} threads {threads}");
            assert_chains_identical(&par.ctmc, &seq.ctmc, &ctx);
            assert_eq!(par.orbit_sizes(), seq.orbit_sizes(), "{ctx}");
            assert_eq!(par.full_states(), seq.full_states(), "{ctx}");
            for s in 0..seq.n_states() {
                assert_eq!(par.reps.get(s), seq.reps.get(s), "{ctx}: rep {s}");
                assert_eq!(par.enabled(s), seq.enabled(s), "{ctx}: enabled {s}");
            }
            // The edge→transitions refill maps coincide: re-rating both
            // graphs from a scaled table gives identical chains.
            let doubled: Vec<f64> = net.rates.iter().map(|r| r * 2.0).collect();
            assert_chains_identical(
                &par.ctmc_with_trans_rates(&doubled),
                &seq.ctmc_with_trans_rates(&doubled),
                &format!("{ctx} (refilled)"),
            );
            assert_eq!(
                par.throughput_of(&net, &last).to_bits(),
                seq.throughput_of(&net, &last).to_bits(),
                "{ctx}"
            );
        }
    }
}

/// The same contract for the plain marking BFS (the `m = 1` degenerate of
/// the quotient): states, enabled sets and chain agree bit for bit at
/// every thread count, and budget errors fire identically.
#[test]
fn parallel_plain_bfs_is_bitwise_sequential() {
    for teams in [vec![2usize, 3], vec![1, 2, 2]] {
        let (_, net, _) = strict_net(&teams, 0.5, 2.0);
        let seq = MarkingGraph::build(
            &net,
            MarkingOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for threads in [2usize, 4, 8] {
            let par = MarkingGraph::build(
                &net,
                MarkingOptions {
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            let ctx = format!("teams {teams:?} threads {threads}");
            assert_chains_identical(&par.ctmc, &seq.ctmc, &ctx);
            assert_eq!(par.n_states(), seq.n_states(), "{ctx}");
            for s in 0..seq.n_states() {
                assert_eq!(par.states.get(s), seq.states.get(s), "{ctx}: state {s}");
                assert_eq!(par.enabled(s), seq.enabled(s), "{ctx}: enabled {s}");
            }
            // A budget below the reachable count errors identically.
            let tight = MarkingOptions {
                max_states: seq.n_states() - 1,
                threads,
                ..Default::default()
            };
            let err = MarkingGraph::build(&net, tight).unwrap_err();
            assert_eq!(
                err,
                repstream_markov::marking::MarkingError::TooManyStates(seq.n_states() - 1),
                "{ctx}"
            );
        }
    }
}

/// Heterogeneous rate tables refuse the symmetry (no `NetSymmetry` is
/// produced), and handing a bogus hint to the direct builder panics
/// rather than silently conflating non-exchangeable markings.
#[test]
fn heterogeneous_platforms_refuse_canonicalization() {
    let shape = MappingShape::new(vec![2, 3]);
    let tpn = Tpn::build(&shape, ExecModel::Strict);
    let het = ResourceTable::from_fns(&shape, |_, s| 0.5 + s as f64, |_, _, _| 2.0);
    let (_, sym) = EventNet::from_tpn_with_symmetry(&tpn, &het);
    assert!(sym.is_none(), "heterogeneous table must refuse the hint");

    // Forcing the structural rotation against heterogeneous rates is a
    // contract violation the builder rejects loudly.
    let hom = homogeneous(&shape, 0.5, 2.0);
    let (_, hom_sym) = EventNet::from_tpn_with_symmetry(&tpn, &hom);
    let hom_sym = hom_sym.unwrap();
    let het_net = EventNet::from_tpn(&tpn, &het);
    let result = std::panic::catch_unwind(|| {
        QuotientGraph::build(&het_net, &hom_sym, MarkingOptions::default())
    });
    assert!(result.is_err(), "bogus hint must panic");
}
