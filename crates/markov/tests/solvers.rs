//! Cross-solver property tests: GTH, uniformized power iteration,
//! Gauss–Seidel, restarted GMRES and SOR must agree on random
//! irreducible chains, including sizes that bracket the auto-selection
//! thresholds of `Ctmc::stationary` (GTH below ~32 states, Gauss–Seidel
//! with a power fallback above), and on the real Theorem 2 quotient
//! chains the top-end plan exists for.

use proptest::prelude::*;
use repstream_markov::ctmc::{Ctmc, Precond, Solver, SolverChoice};
use repstream_markov::krylov::SOR_OMEGA;
use repstream_markov::marking::{MarkingOptions, QuotientGraph};
use repstream_markov::net::EventNet;
use repstream_petri::shape::{ExecModel, MappingShape, ResourceTable};
use repstream_petri::tpn::Tpn;

/// A random irreducible CTMC: a ring `i → i+1` guarantees strong
/// connectivity, plus `extra` random chords per state with rates drawn
/// from the seeded generator in `[0.05, 1.05]`.
fn random_irreducible(n: usize, extra: usize, seed: u64) -> Ctmc {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (i, row) in rows.iter_mut().enumerate() {
        let rate = |v: u64| (v >> 11) as f64 / (1u64 << 53) as f64 + 0.05;
        row.push(((i + 1) % n, rate(next())));
        for _ in 0..extra {
            let j = (next() as usize) % n;
            if j != i {
                row.push((j, rate(next())));
            }
        }
    }
    Ctmc::new(rows)
}

fn assert_agree(a: &[f64], b: &[f64], tol: f64, what: &str) {
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() < tol,
            "{what}: state {i}: {x} vs {y} (diff {})",
            (x - y).abs()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All three solvers agree to 1e-8 and reach residual < 1e-10 on
    /// chains spanning the GTH↔Gauss–Seidel threshold (32 states).
    #[test]
    fn solvers_agree_across_threshold(
        n in 4usize..260,
        extra in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let c = random_irreducible(n, extra, seed);
        let gth = c.stationary_gth();
        let power = c.stationary_power(1e-14, 500_000);
        let gs = c.stationary_gauss_seidel(1e-15, 50_000);
        let auto = c.stationary();
        for (i, pi) in [("gth", &gth), ("power", &power), ("gs", &gs), ("auto", &auto)] {
            let r = c.stationarity_residual(pi);
            prop_assert!(r < 1e-10, "{} residual {:e} at n={}", i, r, n);
        }
        for i in 0..n {
            prop_assert!((gth[i] - power[i]).abs() < 1e-8,
                "gth vs power at {}: {} vs {}", i, gth[i], power[i]);
            prop_assert!((gth[i] - gs[i]).abs() < 1e-8,
                "gth vs gs at {}: {} vs {}", i, gth[i], gs[i]);
            prop_assert!((gth[i] - auto[i]).abs() < 1e-8,
                "gth vs auto at {}: {} vs {}", i, gth[i], auto[i]);
        }
    }
}

/// The large-chain regime (~2 000 states, past every GTH threshold):
/// Gauss–Seidel, power, restarted GMRES, SOR and the auto-selected
/// solver agree to 1e-8 with residuals below 1e-10.  GTH is `O(n³)` and
/// checked separately at one size as the exactness anchor.
#[test]
fn large_sparse_chains_agree() {
    for (n, extra, seed) in [(1000, 2, 7u64), (2000, 2, 11), (2000, 3, 13)] {
        let c = random_irreducible(n, extra, seed);
        let gs = c.stationary_gauss_seidel(1e-15, 50_000);
        let power = c.stationary_power(1e-14, 500_000);
        let gmres = c.stationary_gmres(1e-12, 20_000);
        let sor = c.stationary_sor(SOR_OMEGA, 1e-15, 50_000);
        let auto = c.stationary();
        for (name, pi) in [
            ("gs", &gs),
            ("power", &power),
            ("gmres", &gmres),
            ("sor", &sor),
            ("auto", &auto),
        ] {
            assert!(
                c.stationarity_residual(pi) < 1e-10,
                "{name} residual at n={n}"
            );
        }
        assert_agree(&gs, &power, 1e-8, &format!("gs vs power n={n}"));
        assert_agree(&gs, &gmres, 1e-8, &format!("gs vs gmres n={n}"));
        assert_agree(&gs, &sor, 1e-8, &format!("gs vs sor n={n}"));
        assert_agree(&gs, &auto, 1e-8, &format!("gs vs auto n={n}"));
    }
}

/// The Krylov stack on the chains it was built for: the direct Theorem 2
/// quotient CTMCs of homogeneous Strict TPNs.  Forced GMRES and SOR must
/// reproduce the automatic plan's stationary vector to 1e-8 (and its
/// throughput to 1e-8 relative) with residuals below 1e-10.
#[test]
fn krylov_agrees_on_real_quotient_chains() {
    for teams in [vec![4usize, 5], vec![5, 6]] {
        let shape = MappingShape::new(teams.clone());
        let tpn = Tpn::build(&shape, ExecModel::Strict);
        let rates = ResourceTable::from_fns(&shape, |_, _| 0.5, |_, _, _| 2.0);
        let (net, sym) = EventNet::from_tpn_with_symmetry(&tpn, &rates);
        let sym = sym.expect("homogeneous table keeps the row rotation");
        let qg = QuotientGraph::build(
            &net,
            &sym,
            MarkingOptions {
                max_states: 1 << 22,
                capacity: None,
                ..Default::default()
            },
        )
        .unwrap();
        let c = &qg.ctmc;
        let n = c.n_states();
        let last = tpn.last_column();
        let (rho_auto, auto) = qg.throughput_solve(c, &net.rates, &last, SolverChoice::Auto);
        assert!(
            c.stationarity_residual(&auto.pi) < 1e-10,
            "auto residual {:?} n={n}",
            teams
        );
        for solver in [Solver::Gmres, Solver::GmresPlain, Solver::Sor] {
            let (rho, rep) = qg.throughput_solve(c, &net.rates, &last, SolverChoice::Force(solver));
            assert_eq!(rep.solver, solver, "force must run what was forced");
            let expect_pc = if solver == Solver::Gmres {
                Precond::Jacobi
            } else {
                Precond::None
            };
            assert_eq!(
                rep.precond,
                expect_pc,
                "provenance must name the scaling {} ran under",
                solver.label()
            );
            assert!(
                c.stationarity_residual(&rep.pi) < 1e-10,
                "{} residual {:.3e} on {:?} (n={n})",
                solver.label(),
                rep.residual,
                teams
            );
            assert_agree(
                &auto.pi,
                &rep.pi,
                1e-8,
                &format!("auto vs {} on {teams:?}", solver.label()),
            );
            assert!(
                (rho - rho_auto).abs() <= 1e-8 * rho_auto.abs(),
                "{} throughput {rho} vs auto {rho_auto} on {:?}",
                solver.label(),
                teams
            );
        }
    }
}

/// The Jacobi-scaled GMRES against its unpreconditioned baseline and the
/// uniformized power iteration on a real Theorem 2 quotient chain with a
/// *stiff* rate table (compute and link rates two decades apart — the
/// column-scale spread the scaling exists for).  All three stationary
/// vectors must agree to 1e-8 and meet the 1e-10 residual contract; the
/// preconditioned run must not spend more matvecs than the plain one.
#[test]
fn jacobi_gmres_pins_plain_and_power_on_quotient_chain() {
    let shape = MappingShape::new(vec![4usize, 5]);
    let tpn = Tpn::build(&shape, ExecModel::Strict);
    let rates = ResourceTable::from_fns(&shape, |_, _| 0.04, |_, _, _| 6.0);
    let (net, sym) = EventNet::from_tpn_with_symmetry(&tpn, &rates);
    let sym = sym.expect("homogeneous table keeps the row rotation");
    let qg = QuotientGraph::build(
        &net,
        &sym,
        MarkingOptions {
            max_states: 1 << 22,
            capacity: None,
            ..Default::default()
        },
    )
    .unwrap();
    let c = &qg.ctmc;
    let pc = c.stationary_solve(SolverChoice::Force(Solver::Gmres));
    let plain = c.stationary_solve(SolverChoice::Force(Solver::GmresPlain));
    let power = c.stationary_solve(SolverChoice::Force(Solver::Power));
    assert_eq!(pc.precond, Precond::Jacobi);
    assert_eq!(plain.precond, Precond::None);
    for (name, rep) in [("jacobi", &pc), ("plain", &plain), ("power", &power)] {
        assert!(
            c.stationarity_residual(&rep.pi) < 1e-10,
            "{name} residual {:.3e}",
            rep.residual
        );
    }
    assert_agree(&pc.pi, &plain.pi, 1e-8, "jacobi vs plain gmres");
    assert_agree(&pc.pi, &power.pi, 1e-8, "jacobi gmres vs power");
    assert!(
        pc.iterations <= plain.iterations,
        "jacobi scaling must not cost matvecs on a stiff table: {} vs {}",
        pc.iterations,
        plain.iterations
    );
}

/// GTH exactness anchor at a size where `O(n³)` is still affordable:
/// the iterative solvers must reproduce it.
#[test]
fn gth_anchor_mid_size() {
    let c = random_irreducible(500, 2, 17);
    let gth = c.stationary_gth();
    let gs = c.stationary_gauss_seidel(1e-15, 50_000);
    let power = c.stationary_power(1e-14, 500_000);
    assert!(c.stationarity_residual(&gth) < 1e-12);
    assert_agree(&gth, &gs, 1e-8, "gth vs gs n=500");
    assert_agree(&gth, &power, 1e-8, "gth vs power n=500");
}

/// Dense chains stay on the GTH path of `stationary()` and must match
/// Gauss–Seidel run explicitly.
#[test]
fn dense_chain_auto_matches_gs() {
    // 60 states, ~45 targets each: nnz > n²/4 → the dense GTH branch.
    let n = 60;
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    let mut x = 99u64;
    for (i, row) in rows.iter_mut().enumerate() {
        for j in 0..n {
            if i == j {
                continue;
            }
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if x >> 62 != 0 {
                row.push((j, ((x >> 33) as f64 / (1u64 << 31) as f64) + 0.1));
            }
        }
        if row.is_empty() {
            row.push(((i + 1) % n, 0.5));
        }
    }
    let c = Ctmc::new(rows);
    assert!(
        c.nnz() > n * n / 4,
        "test net must be dense (nnz {})",
        c.nnz()
    );
    let auto = c.stationary();
    let gs = c.stationary_gauss_seidel(1e-15, 50_000);
    assert_agree(&auto, &gs, 1e-8, "auto vs gs dense");
    assert!(c.stationarity_residual(&auto) < 1e-10);
}
