//! Parametric systems behind Figures 12–17.
//!
//! The communication-focused figures all use "a single communication
//! between two negligible computations" with replication factors `u` and
//! `v`; the fidelity figure (12) chains that pattern repeatedly.

use rand::Rng;
use repstream_core::model::{App, Application, Mapping, Platform, System, Workload};
use repstream_stochastic::rng::seeded_rng;

/// Errors of the scenario constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A per-link transfer time must be positive and finite: a zero or
    /// negative time would silently become an infinite/negative bandwidth
    /// (`1 / time`) and propagate NaN into every throughput computed from
    /// the system.
    BadLinkTime {
        /// Sender slot.
        src: usize,
        /// Receiver slot.
        dst: usize,
        /// The offending time.
        time: f64,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::BadLinkTime { src, dst, time } => write!(
                f,
                "link {src} -> {dst}: transfer time {time} must be positive and finite"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A single `u → v` communication between negligible computations
/// (Figures 13 and 15–17).  `comm_time` is the homogeneous transfer time
/// of every link; it must be positive and finite.
pub fn single_comm(u: usize, v: usize, comm_time: f64) -> Result<System, ScenarioError> {
    single_comm_with(u, v, |_, _| comm_time)
}

/// As [`single_comm`] with per-link transfer times (Figure 14's
/// heterogeneous network).
///
/// Every `time(s, d)` is validated before being inverted into a
/// bandwidth: zero, negative, infinite or NaN times are reported as
/// [`ScenarioError::BadLinkTime`] instead of leaking a non-finite
/// bandwidth into the platform.
pub fn single_comm_with(
    u: usize,
    v: usize,
    mut time: impl FnMut(usize, usize) -> f64,
) -> Result<System, ScenarioError> {
    // File of unit size; bandwidth encodes the requested time.
    let app = Application::new(vec![1e-9, 1e-9], vec![1.0]).unwrap();
    let m = u + v;
    let mut platform = Platform::complete(vec![1e9; m], 1.0).unwrap();
    for s in 0..u {
        for d in 0..v {
            let t = time(s, d);
            // The platform validates the bandwidth again, which also
            // catches subnormal times whose reciprocal overflows to ∞.
            if !(t > 0.0 && t.is_finite()) || platform.set_bandwidth(s, u + d, 1.0 / t).is_err() {
                return Err(ScenarioError::BadLinkTime {
                    src: s,
                    dst: d,
                    time: t,
                });
            }
        }
    }
    let mapping =
        Mapping::new(vec![(0..u).collect::<Vec<_>>(), (u..m).collect::<Vec<_>>()]).unwrap();
    Ok(System::new(app, platform, mapping).unwrap())
}

/// Heterogeneous single communication: each link's mean time drawn
/// uniformly in `[100, 1000]` (Figure 14).
pub fn single_comm_heterogeneous(u: usize, v: usize, seed: u64) -> System {
    let mut rng = seeded_rng(seed);
    let mut times = vec![vec![0.0; v]; u];
    for row in &mut times {
        for t in row.iter_mut() {
            *t = rng.gen_range(100.0..1000.0);
        }
    }
    single_comm_with(u, v, |s, d| times[s][d]).expect("drawn times are positive and finite")
}

/// The 12-processor **mapping-search** scenario: a 4-stage chain with two
/// heavy *adjacent* stages on a heterogeneous platform.
///
/// The best mappings replicate both heavy stages, so the transfer between
/// them becomes a `u × v` pattern where deterministic and exponential
/// throughputs genuinely differ (Theorem 4) — the instance the §8
/// mapping-construction heuristics, the portfolio search driver, and the
/// batch-scoring benches all run on.  Returned as `(application,
/// platform)`: the mapping is what the search is *for*.
pub fn mapping_search() -> (Application, Platform) {
    let app = Application::new(vec![8.0, 30.0, 45.0, 12.0], vec![4.0, 6.0, 3.0])
        .expect("static scenario is valid");
    let speeds = vec![3.0, 3.0, 2.5, 2.5, 2.0, 2.0, 2.0, 1.5, 1.5, 1.0, 1.0, 1.0];
    let platform = Platform::complete(speeds, 0.45).expect("static scenario is valid");
    (app, platform)
}

/// The **shared-platform workload** scenario: `k ≥ 1` applications
/// competing for the 12-processor [`mapping_search`] platform.
///
/// Tenants cycle through three templates:
///
/// * `i % 3 == 0` — the 4-stage mapping-search chain, weight 1, no SLA;
/// * `i % 3 == 1` — the **same** chain again, weight 2 and an SLA of
///   0.02 jobs/s.  Identical stage counts mean joint candidates often
///   give apps 0 and 1 the same replication shape, so one search
///   exercises cross-app `ChainCache` sharing (one `TpnSignature`, one
///   marking-graph build);
/// * `i % 3 == 2` — a lighter 3-stage chain with an SLA of 0.05 jobs/s.
///
/// `shared_platform(2)` is therefore the smallest instance with both
/// contention and cache sharing — the CI smoke workload.
pub fn shared_platform(k: usize) -> Workload {
    assert!(k >= 1, "a workload needs at least one application");
    let (anchor, platform) = mapping_search();
    let light =
        Application::new(vec![6.0, 18.0, 9.0], vec![3.0, 2.0]).expect("static scenario is valid");
    let apps = (0..k)
        .map(|i| match i % 3 {
            0 => App::new(anchor.clone()),
            1 => App::new(anchor.clone())
                .with_weight(2.0)
                .and_then(|a| a.with_sla(0.02))
                .expect("static weight/SLA are valid"),
            _ => App::new(light.clone())
                .with_sla(0.05)
                .expect("static SLA is valid"),
        })
        .collect();
    Workload::new(apps, platform).expect("k >= 1 apps")
}

/// Figure 12's repeated pattern: `reps` copies of a 2-stage block joined
/// by a costly 5 → 7 communication.  Stage works are negligible; all the
/// action is in the `reps` communication columns.
///
/// The resulting chain has `2·reps` stages alternating teams of 5 and 7.
pub fn repeated_pattern(reps: usize, comm_time: f64) -> System {
    assert!(reps >= 1);
    let n = 2 * reps;
    let work = vec![1e-9; n];
    // Costly communication inside a block (5 → 7), negligible between
    // blocks (7 → 5).
    let mut sizes = Vec::with_capacity(n - 1);
    for i in 0..n - 1 {
        sizes.push(if i % 2 == 0 { 1.0 } else { 1e-9 });
    }
    let app = Application::new(work, sizes).unwrap();

    let per_block = 5 + 7;
    let m = per_block * reps;
    let platform = Platform::complete(vec![1e9; m], 1.0 / comm_time).unwrap();
    let mut teams = Vec::with_capacity(n);
    let mut next = 0;
    for _ in 0..reps {
        teams.push((next..next + 5).collect::<Vec<_>>());
        next += 5;
        teams.push((next..next + 7).collect::<Vec<_>>());
        next += 7;
    }
    System::new(app, platform, Mapping::new(teams).unwrap()).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use repstream_core::{deterministic, exponential};
    use repstream_petri::shape::ExecModel;

    #[test]
    fn single_comm_deterministic_rate() {
        // u=2, v=3, time 1: deterministic ρ = min(u,v)/time = 2.
        let sys = single_comm(2, 3, 1.0).unwrap();
        let det = deterministic::analyze(&sys, ExecModel::Overlap);
        assert!((det.throughput - 2.0).abs() < 1e-6, "{}", det.throughput);
    }

    #[test]
    fn single_comm_exponential_theorem4() {
        let sys = single_comm(2, 3, 1.0).unwrap();
        let rep = exponential::throughput_overlap(&sys).unwrap();
        assert!((rep.throughput - 1.5).abs() < 1e-6, "{}", rep.throughput);
    }

    #[test]
    fn bad_link_times_rejected() {
        for bad in [0.0, -2.0, f64::INFINITY, f64::NAN] {
            let err = single_comm(2, 3, bad).unwrap_err();
            assert!(
                matches!(err, ScenarioError::BadLinkTime { src: 0, dst: 0, .. }),
                "time {bad}: {err}"
            );
        }
        // A single offending link is pinpointed.
        let err =
            single_comm_with(2, 2, |s, d| if (s, d) == (1, 0) { -1.0 } else { 5.0 }).unwrap_err();
        assert_eq!(
            err,
            ScenarioError::BadLinkTime {
                src: 1,
                dst: 0,
                time: -1.0
            }
        );
        // A subnormal time whose reciprocal overflows to ∞ is caught by
        // the platform-level validation.
        let err = single_comm(1, 1, 5e-324).unwrap_err();
        assert!(matches!(err, ScenarioError::BadLinkTime { .. }), "{err}");
    }

    #[test]
    fn heterogeneous_times_in_range() {
        let sys = single_comm_heterogeneous(3, 4, 9);
        let times = repstream_core::timing::deterministic_times(&sys);
        for (r, &t) in times.iter() {
            if matches!(r, repstream_petri::shape::Resource::Link { .. }) {
                assert!((100.0..1000.0).contains(&t), "{r}: {t}");
            }
        }
    }

    #[test]
    fn mapping_search_scenario_is_searchable() {
        let (app, platform) = mapping_search();
        assert_eq!(app.n_stages(), 4);
        assert_eq!(platform.n_processors(), 12);
        // A valid mapping exists and scores positively.
        let mapping = Mapping::new(vec![vec![0], vec![1, 2], vec![3, 4, 5], vec![6]]).unwrap();
        let sys = System::new(app, platform, mapping).unwrap();
        assert!(deterministic::throughput_columnwise(&sys) > 0.0);
    }

    #[test]
    fn shared_platform_cycles_templates() {
        let w = shared_platform(4);
        assert_eq!(w.n_apps(), 4);
        assert_eq!(w.platform().n_processors(), 12);
        // Apps 0 and 1 share a chain shape (the cache-sharing pair).
        assert_eq!(w.app(0).application(), w.app(1).application());
        assert_eq!(w.app(0).weight(), 1.0);
        assert_eq!(w.app(0).sla(), None);
        assert_eq!(w.app(1).weight(), 2.0);
        assert_eq!(w.app(1).sla(), Some(0.02));
        assert_eq!(w.app(2).application().n_stages(), 3);
        assert_eq!(w.app(2).sla(), Some(0.05));
        // Template cycle wraps around.
        assert_eq!(w.app(3).application(), w.app(0).application());
    }

    #[test]
    fn repeated_pattern_throughput_independent_of_reps() {
        // Figure 12's point: no backward influence, so the rate does not
        // change with the number of repeated blocks.
        let r1 = deterministic::analyze(&repeated_pattern(1, 1.0), ExecModel::Overlap);
        let r3 = deterministic::analyze(&repeated_pattern(3, 1.0), ExecModel::Overlap);
        assert!(
            (r1.throughput - r3.throughput).abs() < 1e-6 * r1.throughput,
            "{} vs {}",
            r1.throughput,
            r3.throughput
        );
        // Exponential too (Theorem 3 decomposition).
        let e1 = exponential::throughput_overlap(&repeated_pattern(1, 1.0)).unwrap();
        let e3 = exponential::throughput_overlap(&repeated_pattern(3, 1.0)).unwrap();
        assert!((e1.throughput - e3.throughput).abs() < 1e-9);
    }
}
