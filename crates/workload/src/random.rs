//! Random instance families — the generator behind the paper's Table 1.
//!
//! The paper draws all relevant parameters (processor speeds, link
//! bandwidths, replication factors) uniformly in stated ranges, and
//! reports computation/communication *times* in seconds.  The generator
//! therefore produces per-resource times directly, alongside the mapping
//! shape.

use rand::seq::SliceRandom;
use rand::Rng;
use repstream_core::model::{JointMapping, Mapping};
use repstream_petri::shape::{MappingShape, ResourceTable};
use repstream_stochastic::rng::seeded_rng;

/// Parameters of a random instance family (one row block of Table 1).
#[derive(Debug, Clone, Copy)]
pub struct FamilyParams {
    /// Number of stages.
    pub stages: usize,
    /// Total number of processors distributed over teams.
    pub processors: usize,
    /// Computation times drawn uniformly from this range (seconds).
    pub comp_range: (f64, f64),
    /// Communication times drawn uniformly from this range (seconds).
    pub comm_range: (f64, f64),
}

impl FamilyParams {
    /// The instance families of Table 1, in row order, with their labels.
    pub fn table1() -> Vec<(&'static str, FamilyParams)> {
        let mk = |stages, processors, comp: (f64, f64), comm: (f64, f64)| FamilyParams {
            stages,
            processors,
            comp_range: comp,
            comm_range: comm,
        };
        vec![
            ("(10,20) 5..15/5..15", mk(10, 20, (5.0, 15.0), (5.0, 15.0))),
            ("(10,30) 5..15/5..15", mk(10, 30, (5.0, 15.0), (5.0, 15.0))),
            (
                "(10,20) 10..1000/10..1000",
                mk(10, 20, (10.0, 1000.0), (10.0, 1000.0)),
            ),
            (
                "(10,30) 10..1000/10..1000",
                mk(10, 30, (10.0, 1000.0), (10.0, 1000.0)),
            ),
            ("(20,30) 5..15/5..15", mk(20, 30, (5.0, 15.0), (5.0, 15.0))),
            (
                "(20,30) 10..1000/10..1000",
                mk(20, 30, (10.0, 1000.0), (10.0, 1000.0)),
            ),
            ("(2,7) 1/5..10", mk(2, 7, (1.0, 1.0), (5.0, 10.0))),
            ("(3,7) 1/5..10", mk(3, 7, (1.0, 1.0), (5.0, 10.0))),
            ("(2,7) 1/10..50", mk(2, 7, (1.0, 1.0), (10.0, 50.0))),
            ("(3,7) 1/10..50", mk(3, 7, (1.0, 1.0), (10.0, 50.0))),
        ]
    }
}

/// One random instance: the mapping shape plus per-resource times.
#[derive(Debug, Clone)]
pub struct RandomInstance {
    /// Team sizes.
    pub shape: MappingShape,
    /// Deterministic time of every resource (seconds).
    pub times: ResourceTable<f64>,
}

/// Split `total` processors over `stages` non-empty teams uniformly.
pub fn random_teams<R: Rng>(stages: usize, total: usize, rng: &mut R) -> Vec<usize> {
    assert!(total >= stages, "need one processor per stage");
    let mut teams = vec![1usize; stages];
    for _ in 0..total - stages {
        teams[rng.gen_range(0..stages)] += 1;
    }
    teams
}

/// Draw one instance of a family.
pub fn instance<R: Rng>(params: &FamilyParams, rng: &mut R) -> RandomInstance {
    let teams = random_teams(params.stages, params.processors, rng);
    let shape = MappingShape::new(teams);
    let (clo, chi) = params.comp_range;
    let (mlo, mhi) = params.comm_range;
    let draw = |lo: f64, hi: f64, rng: &mut R| {
        if hi > lo {
            rng.gen_range(lo..hi)
        } else {
            lo
        }
    };
    // Borrow juggling: pre-draw into closures via local generators.
    let times = {
        let mut proc_vals = Vec::new();
        for i in 0..shape.n_stages() {
            let mut v = Vec::new();
            for _ in 0..shape.team_size(i) {
                v.push(draw(clo, chi, rng));
            }
            proc_vals.push(v);
        }
        let mut link_vals = Vec::new();
        for i in 0..shape.n_stages().saturating_sub(1) {
            let mut mat = Vec::new();
            for _ in 0..shape.team_size(i) {
                let mut row = Vec::new();
                for _ in 0..shape.team_size(i + 1) {
                    row.push(draw(mlo, mhi, rng));
                }
                mat.push(row);
            }
            link_vals.push(mat);
        }
        ResourceTable::from_fns(&shape, |s, p| proc_vals[s][p], |f, s, d| link_vals[f][s][d])
    };
    RandomInstance { shape, times }
}

/// One uniformly random **valid** one-to-many mapping of `stages` stages
/// over processors `0..processors`: disjoint non-empty teams using a
/// uniform count of processors in `[stages, processors]`.
///
/// # Panics
/// Panics when `processors < stages` (no valid mapping exists).
pub fn random_mapping_with<R: Rng>(stages: usize, processors: usize, rng: &mut R) -> Mapping {
    assert!(
        processors >= stages,
        "{processors} processors cannot serve {stages} stages"
    );
    let mut procs: Vec<usize> = (0..processors).collect();
    procs.shuffle(rng);
    let used = rng.gen_range(stages..=processors);
    let mut teams: Vec<Vec<usize>> = vec![Vec::new(); stages];
    for (i, &p) in procs[..used].iter().enumerate() {
        if i < stages {
            teams[i].push(p); // each stage gets one first
        } else {
            teams[rng.gen_range(0..stages)].push(p);
        }
    }
    Mapping::new(teams).expect("teams are non-empty and disjoint by construction")
}

/// `count` seeded random mappings (see [`random_mapping_with`]), the
/// candidate sets of the search benches and property tests.  Candidate
/// `i` depends only on `(seed, i)`, so sets are reproducible and
/// extendable.
pub fn random_mappings(stages: usize, processors: usize, count: usize, seed: u64) -> Vec<Mapping> {
    (0..count as u64)
        .map(|i| {
            let mut rng = seeded_rng(seed.wrapping_add(i).wrapping_mul(0x9E37_79B9));
            random_mapping_with(stages, processors, &mut rng)
        })
        .collect()
}

/// One uniformly random **valid** joint mapping for `stage_counts.len()`
/// applications sharing processors `0..processors`: an independent
/// [`random_mapping_with`] draw per app, so cross-app processor sharing
/// (the contention the workload model charges for) arises naturally.
///
/// # Panics
/// Panics when `stage_counts` is empty or any app has more stages than
/// there are processors.
pub fn random_joint_mapping_with<R: Rng>(
    stage_counts: &[usize],
    processors: usize,
    rng: &mut R,
) -> JointMapping {
    JointMapping::new(
        stage_counts
            .iter()
            .map(|&stages| random_mapping_with(stages, processors, rng))
            .collect(),
    )
    .expect("stage_counts is non-empty")
}

/// `count` seeded random joint mappings (see
/// [`random_joint_mapping_with`]), the candidate sets of the joint-search
/// benches and property tests.  Candidate `i` depends only on
/// `(seed, i)`, so sets are reproducible and extendable — and for a
/// single app, candidate `i`'s first mapping is exactly
/// [`random_mappings`]' candidate `i` (same per-candidate stream).
pub fn random_joint_mappings(
    stage_counts: &[usize],
    processors: usize,
    count: usize,
    seed: u64,
) -> Vec<JointMapping> {
    (0..count as u64)
        .map(|i| {
            let mut rng = seeded_rng(seed.wrapping_add(i).wrapping_mul(0x9E37_79B9));
            random_joint_mapping_with(stage_counts, processors, &mut rng)
        })
        .collect()
}

/// Iterator over `count` seeded instances of a family.
pub fn instances(
    params: FamilyParams,
    count: usize,
    seed: u64,
) -> impl Iterator<Item = RandomInstance> {
    instance_stream(params, seed).take(count)
}

/// Unbounded stream of seeded instances (callers may filter, e.g. by TPN
/// size, and take as many as they need).
pub fn instance_stream(params: FamilyParams, seed: u64) -> impl Iterator<Item = RandomInstance> {
    (0u64..).map(move |i| {
        let mut rng = seeded_rng(seed.wrapping_add(i).wrapping_mul(0x9E37_79B9));
        instance(&params, &mut rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use repstream_petri::shape::Resource;

    #[test]
    fn teams_partition_processors() {
        let mut rng = seeded_rng(1);
        for _ in 0..100 {
            let teams = random_teams(5, 17, &mut rng);
            assert_eq!(teams.iter().sum::<usize>(), 17);
            assert!(teams.iter().all(|&t| t >= 1));
        }
    }

    #[test]
    fn times_respect_ranges() {
        let params = FamilyParams {
            stages: 3,
            processors: 7,
            comp_range: (5.0, 15.0),
            comm_range: (10.0, 50.0),
        };
        let mut rng = seeded_rng(2);
        for _ in 0..20 {
            let inst = instance(&params, &mut rng);
            for (r, &t) in inst.times.iter() {
                match r {
                    Resource::Proc { .. } => {
                        assert!((5.0..15.0).contains(&t), "{r}: {t}")
                    }
                    Resource::Link { .. } => {
                        assert!((10.0..50.0).contains(&t), "{r}: {t}")
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_range_is_constant() {
        let params = FamilyParams {
            stages: 2,
            processors: 7,
            comp_range: (1.0, 1.0),
            comm_range: (5.0, 10.0),
        };
        let mut rng = seeded_rng(3);
        let inst = instance(&params, &mut rng);
        for (r, &t) in inst.times.iter() {
            if matches!(r, Resource::Proc { .. }) {
                assert_eq!(t, 1.0);
            }
        }
    }

    #[test]
    fn random_mappings_are_valid_and_reproducible() {
        let a = random_mappings(4, 12, 40, 9);
        let b = random_mappings(4, 12, 40, 9);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.teams(), y.teams());
        }
        for m in &a {
            assert_eq!(m.n_stages(), 4);
            let used: usize = m.teams().iter().map(Vec::len).sum();
            assert!((4..=12).contains(&used));
            let mut seen = std::collections::HashSet::new();
            for team in m.teams() {
                assert!(!team.is_empty());
                for &p in team {
                    assert!(p < 12);
                    assert!(seen.insert(p), "processor reused");
                }
            }
        }
        // Prefixes agree: candidate i depends only on (seed, i).
        let c = random_mappings(4, 12, 10, 9);
        for (x, y) in c.iter().zip(a.iter()) {
            assert_eq!(x.teams(), y.teams());
        }
    }

    #[test]
    #[should_panic(expected = "cannot serve")]
    fn random_mappings_need_enough_processors() {
        random_mappings(5, 3, 1, 0);
    }

    #[test]
    fn random_joint_mappings_are_valid_and_reproducible() {
        let a = random_joint_mappings(&[4, 3], 12, 30, 9);
        let b = random_joint_mappings(&[4, 3], 12, 30, 9);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.mappings(), y.mappings());
        }
        for j in &a {
            assert_eq!(j.n_apps(), 2);
            assert_eq!(j.mapping(0).n_stages(), 4);
            assert_eq!(j.mapping(1).n_stages(), 3);
            // Per-app disjointness holds; cross-app sharing may not.
            for m in j.mappings() {
                let mut seen = std::collections::HashSet::new();
                for team in m.teams() {
                    assert!(!team.is_empty());
                    for &p in team {
                        assert!(p < 12);
                        assert!(seen.insert(p), "processor reused within an app");
                    }
                }
            }
        }
        // With 2 apps on 12 processors some candidate shares a processor.
        assert!(
            a.iter().any(|j| {
                let first: std::collections::HashSet<_> =
                    j.mapping(0).teams().iter().flatten().copied().collect();
                j.mapping(1)
                    .teams()
                    .iter()
                    .flatten()
                    .any(|p| first.contains(p))
            }),
            "no candidate exercises cross-app sharing"
        );
        // For one app the first mapping replays `random_mappings`' stream.
        let solo = random_joint_mappings(&[4], 12, 10, 9);
        let plain = random_mappings(4, 12, 10, 9);
        for (j, m) in solo.iter().zip(plain.iter()) {
            assert_eq!(j.mapping(0).teams(), m.teams());
        }
    }

    #[test]
    fn instances_are_reproducible() {
        let params = FamilyParams::table1()[0].1;
        let a: Vec<_> = instances(params, 3, 7).map(|i| i.shape).collect();
        let b: Vec<_> = instances(params, 3, 7).map(|i| i.shape).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn table1_has_all_families() {
        assert_eq!(FamilyParams::table1().len(), 10);
    }
}
