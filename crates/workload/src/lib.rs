//! # repstream-workload
//!
//! Workload, platform and mapping generators plus the paper's canned
//! examples — everything the experiment harnesses (§7) need to produce
//! instances.
//!
//! * [`examples`] — Example A (Fig. 1: four stages on seven processors,
//!   replication 1/2/3/1) and Example C (Fig. 6: replication 5/21/27/11);
//! * [`random`] — the random instance families of Table 1 ((stages,
//!   processors) ∈ {(10,20), (10,30), (20,30), (2,7), (3,7)} with
//!   computation/communication times drawn from the paper's ranges), plus
//!   seeded random-mapping candidate sets
//!   ([`random::random_mappings`]) for the search benches and property
//!   tests;
//! * [`scenarios`] — the parametric systems behind Figures 10–17 (the
//!   seven-stage replicated pipeline, the repeated two-stage pattern, the
//!   single `u × v` communication with homogeneous or heterogeneous
//!   links) and the 12-processor [`scenarios::mapping_search`] instance
//!   of the §8 mapping-construction experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod examples;
pub mod random;
pub mod scenarios;
