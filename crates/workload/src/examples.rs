//! The paper's running examples.
//!
//! **Example A** (Figure 1): a four-stage pipeline mapped on seven
//! processors with replication factors 1, 2, 3, 1 (six paths).  The
//! original figure's speed/bandwidth numbers are not recoverable from the
//! paper text (the figure's labels lost their attachment to nodes/edges in
//! the archived version), so this module *reconstructs* an instance with
//! the same structure, engineered to match the paper's headline
//! qualitative facts: under Overlap the period is dictated by the output
//! port of `P1` and equals 189; under Strict the period strictly exceeds
//! the largest resource cycle time.  See `EXPERIMENTS.md`.
//!
//! **Example C** (Figure 6): stages replicated 5, 21, 27, 11 — the
//! showcase for the column decomposition, with `m = lcm = 10395` rows and
//! a second communication column of 3 components, 55 pattern copies each.

use repstream_core::deterministic;
use repstream_core::model::{Application, Mapping, Platform, System};
use repstream_petri::shape::ExecModel;
use repstream_stochastic::rng::seeded_rng;

use rand::Rng;

/// Example A, reconstructed (see module docs).
///
/// Teams: `T0 → {P0}`, `T1 → {P1, P2}`, `T2 → {P3, P4, P5}`,
/// `T3 → {P6}`.
pub fn example_a() -> System {
    // Work in Mflop, sizes in MB, speeds in Mflop/s, bandwidths in MB/s:
    // only the ratios matter.  P1's outgoing links are made slow so its
    // output port is the critical resource under Overlap, as in the paper.
    let app = Application::new(vec![52.0, 95.0, 120.0, 60.0], vec![57.0, 300.0, 73.0]).unwrap();
    let speeds = vec![165.0, 73.0, 77.0, 126.0, 147.0, 128.0, 186.0];
    let mut platform = Platform::complete(speeds, 104.0).unwrap();
    // Slow output links of P1 (to the three T2 processors).
    for q in [3, 4, 5] {
        platform.set_bandwidth(1, q, 22.0).unwrap();
    }
    let mapping = Mapping::new(vec![vec![0], vec![1, 2], vec![3, 4, 5], vec![6]]).unwrap();
    let sys = System::new(app, platform, mapping).unwrap();

    // Rescale the time unit so the Overlap period is exactly the paper's
    // 189 (uniform scaling preserves which resource is critical).
    // Times scale by `g = 189/P` when speeds and bandwidths divide by `g`.
    let p = deterministic::analyze(&sys, ExecModel::Overlap).period;
    let factor = 189.0 / p;
    let speeds: Vec<f64> = (0..7).map(|q| sys.platform().speed(q) / factor).collect();
    let mut platform = Platform::complete(speeds, 104.0 / factor).unwrap();
    for q in [3, 4, 5] {
        platform.set_bandwidth(1, q, 22.0 / factor).unwrap();
    }
    System::new(sys.app().clone(), platform, sys.mapping().clone()).unwrap()
}

/// Example C: replication 5, 21, 27, 11 on 64 processors.
///
/// `speed_spread`/`bw_spread` perturb speeds and bandwidths uniformly in
/// `[1−s, 1+s]` around the nominal values (0 for a homogeneous platform).
pub fn example_c(speed_spread: f64, bw_spread: f64, seed: u64) -> System {
    let teams = [5usize, 21, 27, 11];
    let m: usize = teams.iter().sum();
    let mut rng = seeded_rng(seed);
    let app = Application::new(vec![100.0, 80.0, 120.0, 50.0], vec![64.0, 64.0, 64.0]).unwrap();
    let speeds: Vec<f64> = (0..m)
        .map(|_| 100.0 * (1.0 + speed_spread * (2.0 * rng.gen::<f64>() - 1.0)))
        .collect();
    let mut platform = Platform::complete(speeds, 1.0).unwrap();
    for p in 0..m {
        for q in 0..m {
            if p != q {
                let b = 32.0 * (1.0 + bw_spread * (2.0 * rng.gen::<f64>() - 1.0));
                platform.set_bandwidth(p, q, b).unwrap();
            }
        }
    }
    let mut teams_v = Vec::new();
    let mut next = 0;
    for &r in &teams {
        teams_v.push((next..next + r).collect::<Vec<_>>());
        next += r;
    }
    System::new(app, platform, Mapping::new(teams_v).unwrap()).unwrap()
}

/// The seven-stage pipeline replicated 1, 3, 4, 5, 6, 7, 1 used by the
/// paper's Figures 10 and 11 (27 processors).
pub fn seven_stage_pipeline() -> System {
    let teams = [1usize, 3, 4, 5, 6, 7, 1];
    let m: usize = teams.iter().sum();
    let app = Application::new(
        vec![10.0, 30.0, 40.0, 50.0, 60.0, 70.0, 10.0],
        vec![20.0; 6],
    )
    .unwrap();
    let platform = Platform::complete(vec![10.0; m], 20.0).unwrap();
    let mut teams_v = Vec::new();
    let mut next = 0;
    for &r in &teams {
        teams_v.push((next..next + r).collect::<Vec<_>>());
        next += r;
    }
    System::new(app, platform, Mapping::new(teams_v).unwrap()).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use repstream_petri::shape::Resource;

    #[test]
    fn example_a_matches_paper_headlines() {
        let sys = example_a();
        assert_eq!(sys.shape().teams(), &[1, 2, 3, 1]);
        assert_eq!(sys.shape().n_paths(), 6);
        let det = deterministic::analyze(&sys, ExecModel::Overlap);
        // The paper: Overlap period 189, critical resource = output port
        // of P1 (a link out of stage-1 slot 0 in our indexing).
        assert!((det.period - 189.0).abs() < 1e-6, "period {}", det.period);
        assert!(det.has_critical_resource);
        assert!(
            det.critical_resources.iter().any(|r| matches!(
                r,
                Resource::Link {
                    file: 1,
                    src: 0,
                    ..
                }
            )),
            "critical: {:?}",
            det.critical_resources
        );
    }

    #[test]
    fn example_a_strict_slower() {
        let sys = example_a();
        let ov = deterministic::analyze(&sys, ExecModel::Overlap);
        let st = deterministic::analyze(&sys, ExecModel::Strict);
        assert!(st.period > ov.period);
        // Strict period must still respect the Mct lower bound.
        assert!(st.period >= st.rows as f64 * st.mct - 1e-9);
    }

    #[test]
    fn example_c_dimensions() {
        let sys = example_c(0.0, 0.0, 1);
        assert_eq!(sys.shape().n_paths(), 10395);
        assert_eq!(sys.platform().n_processors(), 64);
        // Columnwise Theorem 1 handles the 10395-row system instantly.
        let rho = deterministic::throughput_columnwise(&sys);
        assert!(rho > 0.0);
    }

    #[test]
    fn seven_stage_shape() {
        let sys = seven_stage_pipeline();
        assert_eq!(sys.shape().n_paths(), 420);
        let laws =
            repstream_core::timing::laws(&sys, repstream_stochastic::law::LawFamily::Deterministic);
        let _ = laws; // timing plumbing works on the big example
    }
}
