//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided — since Rust 1.63 the standard
//! library's `std::thread::scope` offers the same structured-concurrency
//! guarantee, so the shim is a thin adapter that keeps crossbeam's calling
//! convention (`scope(|s| …)` returning a `Result`, `s.spawn(|_| …)`).

#![warn(missing_docs)]

/// Scoped threads (`crossbeam::thread` subset).
pub mod thread {
    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish and return its result.
        ///
        /// # Errors
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            std::thread::ScopedJoinHandle::join(self.inner)
        }
    }

    /// A scope in which threads borrowing local data may be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread.  The closure receives the scope (to match
        /// crossbeam's signature); nested spawning is not needed here.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Self) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Create a scope for spawning threads that borrow from the caller.
    ///
    /// Always returns `Ok`: with `std::thread::scope`, a panic in a child
    /// propagates when the scope exits rather than being captured here, so
    /// the `Result` exists purely for crossbeam API compatibility.
    ///
    /// # Errors
    /// Never fails (see above).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_spawns_and_joins() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
