//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The build container has no registry access, so the workspace vendors the
//! thin slice of `rand` it actually uses: the [`Rng`] / [`SeedableRng`]
//! traits, a xoshiro256++ [`rngs::SmallRng`], uniform range sampling for the
//! integer and float ranges the generators need, and
//! [`seq::SliceRandom::shuffle`].  Semantics follow the real crate closely
//! enough for every caller here (statistical quality, determinism under a
//! fixed seed); bit-exact compatibility with upstream streams is *not* a
//! goal.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the `rand::Rng` surface this workspace uses.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value of a primitive type (`rand`'s `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform value in a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly from raw bits (`rand`'s `Standard`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (`rand`'s `SampleRange`).
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draw one value from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer draw in `[0, n)` by Lemire-style rejection.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0);
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every u64 value is valid.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.gen::<f64>()
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * rng.gen::<f64>()
    }
}

/// Deterministic construction from seeds (`rand`'s `SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, seedable generator — xoshiro256++ (the same family
    /// the real `SmallRng` uses on 64-bit targets).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`rand::seq` subset).
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly imported names (`rand::prelude` subset).
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_distinct() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let w = r.gen_range(2usize..=4);
            assert!((2..=4).contains(&w));
            let f = r.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
