//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! slice of proptest it uses: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`], the
//! [`proptest!`] test macro with `#![proptest_config(…)]`, and the
//! `prop_assert*` macros.  Differences from the real crate:
//!
//! * **no shrinking** — a failing case reports its deterministic case
//!   index; inputs regenerate from the (test name, case index) seed, so
//!   failures are reproducible but not minimized;
//! * **no persistence** — there is no failure-regression file.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod test_runner;

use test_runner::TestRng;

/// Per-test configuration (`cases` = number of random inputs tried).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification of a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of the element strategy's values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Commonly imported names (`proptest::prelude` subset).
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Define property tests: each `fn` runs `cases` times on random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        cfg.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Check a condition; on failure the enclosing property case fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Check equality; on failure the enclosing property case fails.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, "assertion failed: {:?} != {:?}", lhs, rhs);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// Check inequality; on failure the enclosing property case fails.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs != rhs, "assertion failed: {:?} == {:?}", lhs, rhs);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("bounds", 0);
        for _ in 0..500 {
            let a = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&a));
            let b = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&b));
            let c = (0.5..2.5f64).generate(&mut rng);
            assert!((0.5..2.5).contains(&c));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::test_runner::TestRng::for_case("compose", 0);
        let s = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0.0..1.0f64, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_args(x in 0usize..100, (a, b) in (0.0..1.0f64, 0u32..3)) {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!(b < 3, "b was {}", b);
            prop_assert_eq!(x, x);
        }
    }
}
