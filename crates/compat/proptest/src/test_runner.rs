//! Deterministic RNG and failure type backing the [`proptest!`] macro.
//!
//! [`proptest!`]: crate::proptest

/// Why a property case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator: every (test name, case index) pair maps to a
/// fixed stream, so a reported failing case regenerates exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for one case of one named property.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut x = h ^ (u64::from(case) << 32) ^ u64::from(case);
        TestRng {
            s: [
                splitmix(&mut x),
                splitmix(&mut x),
                splitmix(&mut x),
                splitmix(&mut x),
            ],
        }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
