//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!`, `black_box` — over a simple adaptive timing loop:
//! per sample the iteration count is chosen so a batch runs ≥ ~20 ms, then
//! `sample_size` samples are collected and min / median / mean per-iteration
//! times are printed.  No statistics beyond that, no HTML reports, no
//! baseline storage; `BENCH_*` JSON snapshots are produced by the dedicated
//! `perf_snapshot` binary instead.
//!
//! Passing `--test` (as `cargo test --benches` does) runs every benchmark
//! body exactly once, so benches double as smoke tests.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time of one measurement batch.
const BATCH_TARGET: Duration = Duration::from_millis(20);
/// Hard per-benchmark time budget.
const BENCH_BUDGET: Duration = Duration::from_secs(3);

/// Top-level harness state.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            test_mode: self.test_mode,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, self.test_mode, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, self.test_mode, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark a function by name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, self.test_mode, &mut f);
        self
    }

    /// End the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Time `iters` executions of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64, test_mode: bool) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
        test_mode,
    };
    f(&mut b);
    b.elapsed
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, test_mode: bool, f: &mut F) {
    if test_mode {
        time_batch(f, 1, true);
        println!("{label}: ok (test mode)");
        return;
    }
    let budget = Instant::now();
    // Calibrate: grow the iteration count until a batch takes long enough
    // to time reliably.
    let mut iters: u64 = 1;
    loop {
        let t = time_batch(f, iters, false);
        if t >= BATCH_TARGET || budget.elapsed() > BENCH_BUDGET / 2 {
            break;
        }
        let grow = if t.is_zero() {
            16.0
        } else {
            (BATCH_TARGET.as_secs_f64() / t.as_secs_f64()).clamp(1.5, 16.0)
        };
        iters = ((iters as f64 * grow).ceil() as u64).max(iters + 1);
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = time_batch(f, iters, false);
        per_iter.push(t.as_secs_f64() / iters as f64);
        if budget.elapsed() > BENCH_BUDGET {
            break;
        }
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{label}: min {} / median {} / mean {}  ({} iters × {} samples)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        iters,
        per_iter.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundle benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("gth", "3x4").label, "gth/3x4");
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
    }

    #[test]
    fn bencher_times_work() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
            test_mode: false,
        };
        b.iter(|| black_box(3u64).pow(7));
        assert!(b.elapsed > Duration::ZERO || b.iters == 0);
    }
}
