//! The serving layer: `repstream serve` — a resident analyzer answering
//! wire-protocol queries over TCP.
//!
//! ## Shape
//!
//! One acceptor thread + a fixed pool of worker threads (std scoped
//! threads, `std::net` TCP — no extra dependencies).  Accepted
//! connections go into a `Mutex<VecDeque>` + `Condvar` queue; each
//! worker owns one connection at a time and answers its frames until
//! the peer closes.  A worker that loses its peer mid-request just
//! drops the connection — the server stays up.
//!
//! ## The shared cache
//!
//! All analyze/report requests solve through one
//! [`SharedChainCache`] — the sharded concurrent chain cache
//! (`repstream-markov`).  Two clients asking about the same TPN shape
//! pay one marking BFS: the first request builds, every later request
//! (any connection, any worker) reuses the cached chain and re-solves
//! only the linear system.  Sharding is by `TpnSignature` hash with
//! per-shard locking, so warm hits on one shape never serialize behind
//! a cold build of another.  Search requests check a private
//! [`ChainCache`] out of a pool instead (a search scores *many* shapes
//! back-to-back; holding a shard lock that long would starve analyze
//! traffic) and check it back in warm afterwards.
//!
//! ## Governance
//!
//! Every request arms its own [`Budget`]: the client's relative
//! `deadline_ms` capped by the server's `--deadline-cap`, and
//! `max_states` clamped by the server's cap.  The degradation ladder is
//! exactly the CLI's: under `degrade=bounds` a deadline miss falls the
//! Strict section back to the N.B.U.E. sandwich and the response is
//! stamped degraded; under `degrade=fail` the request errors with the
//! interrupted class.  One slow request cannot take the server down —
//! or even another connection's latency budget.

use repstream_core::exponential::{ExpError, ExpOptions, StrictReport};
use repstream_core::model::{Platform, System};
use repstream_core::report::{system_report_shared, ReportStatus};
use repstream_core::timing;
use repstream_core::wire::{
    read_request, read_response, write_request, write_response, AnalyzeResponse, ErrorResponse,
    Request, Response, ScalePoint, ScaleResponse, SearchResponse, StatsResponse, WireCandidate,
    WireError, WireOptions,
};
use repstream_engine::{portfolio_search_cached, PortfolioOptions};
use repstream_markov::cache::{ChainCache, SharedChainCache};
use repstream_markov::govern::Budget;
use repstream_markov::marking::MarkingError;
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Server configuration (the CLI's `serve` flags).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads answering requests.
    pub workers: usize,
    /// Server-side relative deadline cap applied to every request
    /// (`None` = only client deadlines apply).
    pub deadline_cap: Option<Duration>,
    /// Server-side clamp on any request's `max_states`.
    pub max_states_cap: usize,
    /// Shards of the shared chain cache (rounded up to a power of two).
    pub shards: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7533".to_string(),
            workers: 4,
            deadline_cap: None,
            max_states_cap: repstream_core::report::ReportOptions::default().max_states,
            shards: SharedChainCache::DEFAULT_SHARDS,
        }
    }
}

/// A bound, not-yet-running `repstream serve` instance.
///
/// [`Server::bind`] claims the port (so callers can read
/// [`Server::local_addr`] before any client connects); [`Server::run`]
/// blocks serving requests until a [`Request::Shutdown`] frame arrives,
/// then drains queued and in-flight connections and returns.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    opts: ServeOptions,
    cache: SharedChainCache,
    /// Warm per-search caches, checked out for the duration of one
    /// search request and returned afterwards.
    search_caches: Mutex<Vec<ChainCache>>,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    shutdown: AtomicBool,
    requests: AtomicU64,
    connections: AtomicU64,
}

impl Server {
    /// Bind the listen socket and build the shared state.
    pub fn bind(opts: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let cache = SharedChainCache::with_shards(opts.shards);
        Ok(Server {
            listener,
            cache,
            search_caches: Mutex::new(Vec::new()),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            opts,
        })
    }

    /// The bound address (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a shutdown frame arrives, then drain and return.
    ///
    /// The calling thread becomes the acceptor; `workers` scoped
    /// threads answer requests.  All of them are joined before this
    /// returns, so when `run` is back the port is quiet and every
    /// accepted connection got its answers.
    pub fn run(&self) -> io::Result<()> {
        std::thread::scope(|s| {
            for _ in 0..self.opts.workers.max(1) {
                s.spawn(|| self.worker_loop());
            }
            self.accept_loop();
            // Unblock workers parked on an empty queue; each drains
            // remaining connections before exiting.
            self.ready.notify_all();
        });
        Ok(())
    }

    fn accept_loop(&self) {
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                // The wake connection itself needs no service.
                break;
            }
            match conn {
                Ok(stream) => {
                    self.connections.fetch_add(1, Ordering::Relaxed);
                    let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                    q.push_back(stream);
                    drop(q);
                    self.ready.notify_one();
                }
                // A peer that vanished between SYN and accept is not a
                // server problem; keep listening.
                Err(_) => continue,
            }
        }
    }

    fn worker_loop(&self) {
        loop {
            let conn = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(conn) = q.pop_front() {
                        break Some(conn);
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        break None;
                    }
                    q = self.ready.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            match conn {
                Some(stream) => self.handle_connection(stream),
                None => return,
            }
        }
    }

    /// Answer one connection's frames until the peer closes (or breaks
    /// protocol).  Peer failures never propagate past this frame.
    fn handle_connection(&self, stream: TcpStream) {
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        loop {
            match read_request(&mut reader) {
                Ok(None) => return, // clean close between frames
                Ok(Some(req)) => {
                    self.requests.fetch_add(1, Ordering::Relaxed);
                    let stop = matches!(req, Request::Shutdown);
                    // A request that panics (a model invariant tripping
                    // deep in a solver) costs its connection an
                    // internal-class error, not the server its life.
                    let resp = catch_unwind(AssertUnwindSafe(|| self.dispatch(req)))
                        .unwrap_or_else(|_| {
                            Response::Error(ErrorResponse::internal(
                                "request handler panicked; see server log",
                            ))
                        });
                    if write_response(&mut writer, &resp).is_err() {
                        return; // peer went away mid-answer
                    }
                    if stop {
                        return;
                    }
                }
                Err(e) => {
                    // Best-effort structured goodbye; the stream may
                    // already be dead.
                    let class = ErrorResponse::config(format!("bad frame: {e}"));
                    let _ = write_response(&mut writer, &Response::Error(class));
                    return;
                }
            }
        }
    }

    fn dispatch(&self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::Analyze(r) => self.analyze(&r.system, r.options),
            Request::Report(r) => self.report(&r.system, r.options),
            Request::Search(r) => self.search(&r),
            Request::Scale(r) => self.scale(&r.system, &r.processor_counts),
            Request::Stats => Response::Stats(StatsResponse {
                cache: self.cache.stats(),
                requests: self.requests.load(Ordering::Relaxed),
                connections: self.connections.load(Ordering::Relaxed),
                workers: self.opts.workers.max(1),
                shards: self.cache.shards(),
            }),
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                self.wake_acceptor();
                self.ready.notify_all();
                Response::ShuttingDown
            }
        }
    }

    /// Nudge the acceptor off its blocking `accept` so it observes the
    /// shutdown flag (the classic self-connect wake).
    fn wake_acceptor(&self) {
        if let Ok(addr) = self.local_addr() {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        }
    }

    fn analyze(&self, system: &System, options: WireOptions) -> Response {
        if let Err(e) = timing::validate_service_times(system) {
            return Response::Error(ErrorResponse::config(e));
        }
        let report_opts = options.report_options(self.opts.deadline_cap, self.opts.max_states_cap);
        let (text, status) = system_report_shared(system, report_opts, &self.cache);
        Response::Analyze(AnalyzeResponse { text, status })
    }

    fn report(&self, system: &System, options: WireOptions) -> Response {
        if let Err(e) = timing::validate_service_times(system) {
            return Response::Error(ErrorResponse::config(e));
        }
        let report_opts = options.report_options(self.opts.deadline_cap, self.opts.max_states_cap);
        let exp_opts = ExpOptions {
            max_states: report_opts.max_states,
            lumping: report_opts.lumping,
            threads: report_opts.threads,
            solver: report_opts.solver,
            interner_spill: report_opts.interner_spill,
            budget: report_opts.budget,
            ..Default::default()
        };
        let mut solver = &self.cache;
        match repstream_core::exponential::throughput_strict_with_solver(
            system,
            exp_opts,
            &mut solver,
        ) {
            Ok(report) => Response::Report(report),
            Err(e) => Response::Error(classify_exp_error(&e)),
        }
    }

    fn search(&self, r: &repstream_core::wire::SearchRequest) -> Response {
        let wire_opts = WireOptions {
            deadline_ms: r.deadline_ms,
            ..Default::default()
        };
        let opts = PortfolioOptions {
            random_candidates: r.random_candidates,
            seed: r.seed,
            exp_rerank: r.exp_rerank,
            lumping: r.lumping,
            budget: match wire_opts.effective_deadline(self.opts.deadline_cap) {
                Some(d) => Budget::deadline_in(d),
                None => Budget::UNLIMITED,
            },
            ..Default::default()
        };
        let cache = {
            let mut pool = self.search_caches.lock().unwrap_or_else(|e| e.into_inner());
            pool.pop().unwrap_or_default()
        };
        let (result, cache) = portfolio_search_cached(&r.app, &r.platform, opts, cache);
        {
            let mut pool = self.search_caches.lock().unwrap_or_else(|e| e.into_inner());
            pool.push(cache);
        }
        match result {
            Ok(report) => Response::Search(SearchResponse {
                finalists: report
                    .finalists
                    .iter()
                    .map(|c| WireCandidate {
                        origin: c.origin.to_string(),
                        teams: c.mapping.teams().to_vec(),
                        det: c.det,
                        exp: c.exp,
                    })
                    .collect(),
                det_evaluations: report.det_evaluations,
                delta_recomputes: report.delta_recomputes,
                exp_evaluations: report.exp_evaluations,
                cache_hits: report.exp_cache.hits(),
                cache_misses: report.exp_cache.misses(),
            }),
            Err(e) => Response::Error(if e.interrupt().is_some() {
                ErrorResponse::interrupted(e.to_string())
            } else {
                ErrorResponse::config(e.to_string())
            }),
        }
    }

    fn scale(&self, system: &System, processor_counts: &[usize]) -> Response {
        let platform = system.platform();
        let m = platform.n_processors();
        let mut points = Vec::with_capacity(processor_counts.len());
        for &p in processor_counts {
            if p == 0 || p > m {
                return Response::Error(ErrorResponse::config(format!(
                    "scale: processor count {p} outside 1..={m}"
                )));
            }
            let speeds: Vec<f64> = (0..p).map(|i| platform.speed(i)).collect();
            let bw: Vec<Vec<f64>> = (0..p)
                .map(|i| {
                    (0..p)
                        .map(|j| {
                            if i == j {
                                1.0
                            } else {
                                platform.bandwidth(i, j)
                            }
                        })
                        .collect()
                })
                .collect();
            let prefix = match Platform::new(speeds, bw) {
                Ok(pl) => pl,
                Err(e) => return Response::Error(ErrorResponse::config(e.to_string())),
            };
            // Deterministic-only search: scale curves are a det-scoring
            // sweep (the paper's Theorem 1 metric); a modest seeded
            // batch keeps multi-point sweeps interactive.
            let opts = PortfolioOptions {
                random_candidates: 64,
                seed: 2010,
                exp_rerank: false,
                ..Default::default()
            };
            let cache = {
                let mut pool = self.search_caches.lock().unwrap_or_else(|e| e.into_inner());
                pool.pop().unwrap_or_default()
            };
            let (result, cache) = portfolio_search_cached(system.app(), &prefix, opts, cache);
            {
                let mut pool = self.search_caches.lock().unwrap_or_else(|e| e.into_inner());
                pool.push(cache);
            }
            match result {
                Ok(report) => points.push(ScalePoint {
                    processors: p,
                    det_throughput: report.best.det,
                    teams: report.best.mapping.teams().to_vec(),
                }),
                Err(e) => return Response::Error(ErrorResponse::config(e.to_string())),
            }
        }
        Response::Scale(ScaleResponse { points })
    }
}

/// Map a strict-solve failure onto the response error taxonomy.
fn classify_exp_error(e: &ExpError) -> ErrorResponse {
    let marking = match e {
        ExpError::MarkingGraph(m) => m,
        ExpError::PatternTooLarge { source, .. } => source,
    };
    match marking {
        MarkingError::TooManyStates(_) => ErrorResponse::over_budget(e.to_string()),
        MarkingError::Interrupted(_) => ErrorResponse::interrupted(e.to_string()),
        MarkingError::NotSafe { .. } | MarkingError::Deadlock => {
            ErrorResponse::config(e.to_string())
        }
        MarkingError::SpillIo(_) => ErrorResponse::internal(e.to_string()),
    }
}

// ---------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------

/// A blocking wire-protocol client (`repstream client`, the load-test
/// harness, and the lifecycle tests all speak through this).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        write_request(&mut self.writer, req)?;
        match read_response(&mut self.reader)? {
            Some(resp) => Ok(resp),
            None => Err(WireError::Truncated),
        }
    }
}

/// Map a served response to the CLI exit taxonomy — the same codes the
/// one-shot commands document (`0` ok/degraded, `2` config, `3`
/// over-budget, `4` interrupted, `5` internal).
pub fn response_exit_code(resp: &Response) -> i32 {
    match resp {
        Response::Error(e) => i32::from(e.class),
        Response::Analyze(a) => match a.status {
            ReportStatus::Ok | ReportStatus::Degraded(_) => 0,
            ReportStatus::OverBudget => 3,
            ReportStatus::Interrupted(_) => 4,
            ReportStatus::Internal => 5,
        },
        _ => 0,
    }
}

/// Convenience for tests and examples: a [`StrictReport`] fetched over
/// the wire, or the error class that came back instead.
pub fn fetch_report(
    addr: impl ToSocketAddrs,
    system: &System,
    options: WireOptions,
) -> Result<StrictReport, String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    match client
        .call(&Request::Report(repstream_core::wire::ReportRequest {
            system: system.clone(),
            options,
        }))
        .map_err(|e| e.to_string())?
    {
        Response::Report(r) => Ok(r),
        Response::Error(e) => Err(format!("class {}: {}", e.class, e.message)),
        other => Err(format!("unexpected response {other:?}")),
    }
}
