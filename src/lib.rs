//! # repstream — throughput of probabilistic and replicated streaming applications
//!
//! Facade crate re-exporting the whole `repstream` workspace, a Rust
//! reproduction of *“Computing the Throughput of Probabilistic and
//! Replicated Streaming Applications”* (Benoit, Gallet, Gaujal, Robert —
//! SPAA 2010 / INRIA RR-7510).
//!
//! See the [`core`] crate for the single-evaluation entry points, the
//! [`engine`] crate for batch scoring and mapping search, the repository
//! `README.md` for the CLI, and `ARCHITECTURE.md` for the paper↔code map
//! and the crate dependency diagram.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod serve;

pub use repstream_core as core;
pub use repstream_engine as engine;
pub use repstream_markov as markov;
pub use repstream_maxplus as maxplus;
pub use repstream_petri as petri;
pub use repstream_platformsim as platformsim;
pub use repstream_stochastic as stochastic;
pub use repstream_workload as workload;
