//! `repstream` — command-line throughput analysis.
//!
//! ```sh
//! repstream analyze system.rsys        # full report
//! repstream dot system.rsys overlap    # Graphviz of the TPN
//! repstream example-a                  # built-in Example A
//! repstream search mapping-search      # portfolio mapping search
//! ```
//!
//! `search` runs the engine's portfolio driver (greedy + parallel random
//! batch + delta-scored hill climbing + exponential re-rank) on a named
//! `workload::scenarios` scenario (`mapping-search`, `example-a`) or on
//! the application/platform of an `.rsys` file, and prints the scored
//! finalists with the evaluation and cache counters.  Flags:
//! `--model overlap|strict`, `--candidates N`, `--seed N`, `--no-exp`,
//! `--no-lump`, `--threads N`, `--solver S`.
//!
//! `search --scenario workload` (equivalently `search workload`) runs
//! the **multi-application** joint search instead: `--apps K` tenants of
//! `scenarios::shared_platform` contend for the 12-processor platform,
//! and `--objective maxmin|weighted|sla` picks the scalarization of the
//! per-app contended throughputs.  The report prints the winner's
//! per-app throughput table (weight, SLA verdict) and a contention
//! summary (shared processors/links, busiest processor).
//!
//! `--no-lump` (also accepted by `analyze`) turns the symmetry-reduced
//! quotient solve of the Strict Theorem 2 chain off, for A/B runs against
//! the full chain — both report the same throughput, the report shows
//! full-vs-quotient state counts.
//!
//! `--threads N` (also accepted by `analyze`) sets the worker count of
//! the chunk-parallel marking BFS behind the Theorem 2 chains: `0` (the
//! default) auto-sizes to the machine, `1` forces the sequential scan.
//! Every value produces **bitwise-identical** numbers — the flag only
//! trades wall-clock for cores.
//!
//! `--solver auto|gth|gs|gmres|gmres-plain|sor|power` (also accepted by
//! `analyze`) picks the stationary method of the Theorem 2 chains:
//! `auto` (the default) runs the measured solver plan (GTH on
//! small/dense chains, Gauss–Seidel in the mid range, adaptive SOR →
//! Jacobi-scaled GMRES → power on ≥ 2²⁰-state quotients), anything else
//! forces that one method (`gmres` is Jacobi-preconditioned,
//! `gmres-plain` the unscaled baseline).  The report's Strict section
//! prints the solver that actually ran, the preconditioner it iterated
//! under, its iteration count, final residual, and the build's memory
//! footprint (arena + interner resident bytes, spilled bytes).
//!
//! `analyze` also accepts `--max-states N` (state budget of the Strict
//! Theorem 2 chain; the 4M default covers 6×7-class quotients, a 7×8
//! has 14.06M lumped states) and `--interner-spill` (park marking-arena payload bytes
//! in an unlinked temp file during the BFS — bitwise-neutral, bounds
//! peak RSS; tune with `REPSTREAM_SPILL_MIB`, `REPSTREAM_SPILL_DIR`,
//! and `REPSTREAM_INTERNER_SHARDS`).
//!
//! `--deadline DUR` (`2s`, `500ms`; `analyze` and `search`) arms the
//! cooperative resource governor: the marking BFS checks it per level,
//! the stationary solvers per restart/sweep checkpoint, the portfolio
//! per candidate sub-batch.  What happens when it fires is
//! `--degrade bounds|fail` (default `bounds`): `bounds` falls the Strict
//! section back to the cached N.B.U.E. Theorem sandwich and stamps the
//! report with `degraded=yes method=bounds-fallback reason=…` (exit 0);
//! `fail` aborts with a structured one-line error (exit 4).  Without
//! `--deadline` the governor never runs and the output is
//! bitwise-identical to earlier releases.
//!
//! Exit codes: `0` success (including a degraded-to-bounds report),
//! `2` configuration/usage error, `3` over the `--max-states` budget,
//! `4` interrupted under `--degrade fail`, `5` internal error (e.g.
//! spill I/O).
//!
//! The `.rsys` format is a small line-oriented description (see
//! [`repstream::workload` docs] and `parse_system`):
//!
//! ```text
//! # comments and blank lines ignored
//! stages    4
//! work      52 95 120 60
//! files     57 300 73
//! speeds    165 73 77 126 147 128 186
//! bandwidth 104                 # default for every link
//! link      1 3 22              # override: proc 1 -> proc 3
//! link      1 4 22
//! team      0                   # stage 0 team: processor ids
//! team      1 2
//! team      3 4 5
//! team      6
//! ```

use repstream::core::model::{Application, Mapping, Platform, System};
use repstream::core::report::{
    system_report, system_report_status, DegradeMode, ReportOptions, ReportStatus,
};
use repstream::core::timing;
use repstream::core::wire::{
    AnalyzeRequest, Request, Response, ScaleRequest, SearchRequest, WireOptions,
};
use repstream::engine::{
    portfolio_search, workload_search, Objective, PortfolioOptions, WorkloadSearchOptions,
};
use repstream::markov::ctmc::SolverChoice;
use repstream::markov::govern::Budget;
use repstream::petri::dot::to_dot;
use repstream::petri::shape::ExecModel;
use repstream::petri::tpn::Tpn;
use repstream::serve::{response_exit_code, Client, ServeOptions, Server};
use repstream::workload::examples::example_a;
use repstream::workload::scenarios;
use std::time::Duration;

fn main() {
    #[cfg(feature = "fault-inject")]
    if let Err(e) = repstream::markov::fault::install_from_env() {
        eprintln!("error: REPSTREAM_FAULT: {e}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = run(&args);
    std::process::exit(code);
}

/// Parse a `--deadline` spelling: `2s`, `1.5s`, `500ms`.
fn parse_deadline(s: &str) -> Option<Duration> {
    let (num, scale) = if let Some(ms) = s.strip_suffix("ms") {
        (ms, 1e-3)
    } else if let Some(sec) = s.strip_suffix('s') {
        (sec, 1.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = num.parse().ok()?;
    if v.is_finite() && v > 0.0 {
        Some(Duration::from_secs_f64(v * scale))
    } else {
        None
    }
}

/// Map the report outcome to the documented exit taxonomy.
fn exit_code(status: ReportStatus) -> i32 {
    match status {
        ReportStatus::Ok | ReportStatus::Degraded(_) => 0,
        ReportStatus::OverBudget => 3,
        ReportStatus::Interrupted(_) => 4,
        ReportStatus::Internal => 5,
    }
}

fn run(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("analyze") => {
            let mut path = None;
            let mut report_opts = ReportOptions::default();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--no-lump" => report_opts.lumping = false,
                    "--threads" => {
                        i += 1;
                        match args.get(i).and_then(|s| s.parse().ok()) {
                            Some(n) => report_opts.threads = n,
                            None => {
                                eprintln!("error: --threads needs a count (0 = auto)");
                                return 2;
                            }
                        }
                    }
                    "--solver" => {
                        i += 1;
                        match args.get(i).and_then(|s| SolverChoice::parse(s)) {
                            Some(c) => report_opts.solver = c,
                            None => {
                                eprintln!(
                                    "error: --solver needs auto|gth|gs|gmres|gmres-plain|sor|power"
                                );
                                return 2;
                            }
                        }
                    }
                    "--max-states" => {
                        i += 1;
                        match args.get(i).and_then(|s| s.parse().ok()) {
                            Some(n) if n > 0 => report_opts.max_states = n,
                            _ => {
                                eprintln!("error: --max-states needs a positive state budget");
                                return 2;
                            }
                        }
                    }
                    "--interner-spill" => report_opts.interner_spill = true,
                    "--deadline" => {
                        i += 1;
                        match args.get(i).and_then(|s| parse_deadline(s)) {
                            Some(d) => report_opts.budget = Budget::deadline_in(d),
                            None => {
                                eprintln!("error: --deadline needs a duration like 2s or 500ms");
                                return 2;
                            }
                        }
                    }
                    "--degrade" => {
                        i += 1;
                        match args.get(i).map(String::as_str) {
                            Some("bounds") => report_opts.degrade = DegradeMode::Bounds,
                            Some("fail") => report_opts.degrade = DegradeMode::Fail,
                            _ => {
                                eprintln!("error: --degrade needs bounds|fail");
                                return 2;
                            }
                        }
                    }
                    other if path.is_none() && !other.starts_with('-') => path = Some(other),
                    other => {
                        eprintln!("error: unknown analyze argument {other}");
                        return 2;
                    }
                }
                i += 1;
            }
            match path {
                Some(path) => match load(path) {
                    Ok(sys) => {
                        let (report, status) = system_report_status(&sys, report_opts);
                        print!("{report}");
                        let code = exit_code(status);
                        match status {
                            ReportStatus::OverBudget => {
                                eprintln!("error: over the --max-states budget (exit {code})")
                            }
                            ReportStatus::Interrupted(r) => {
                                eprintln!("error: interrupted ({}) (exit {code})", r.label())
                            }
                            ReportStatus::Internal => {
                                eprintln!("error: internal analysis failure (exit {code})")
                            }
                            ReportStatus::Ok | ReportStatus::Degraded(_) => {}
                        }
                        code
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        2
                    }
                },
                None => usage(),
            }
        }
        Some("dot") => {
            let (path, model) = match (args.get(1), args.get(2)) {
                (Some(p), m) => (p, m.map(String::as_str).unwrap_or("overlap")),
                _ => return usage(),
            };
            let model = match model {
                "overlap" => ExecModel::Overlap,
                "strict" => ExecModel::Strict,
                other => {
                    eprintln!("error: unknown model {other} (overlap|strict)");
                    return 2;
                }
            };
            match load(path) {
                Ok(sys) => {
                    let tpn = Tpn::build(&sys.shape(), model);
                    print!("{}", to_dot(&tpn));
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    2
                }
            }
        }
        Some("example-a") => {
            print!("{}", system_report(&example_a(), ReportOptions::default()));
            0
        }
        Some("search") => run_search(&args[1..]),
        Some("serve") => run_serve(&args[1..]),
        Some("client") => run_client(&args[1..]),
        _ => usage(),
    }
}

/// `repstream serve [--addr A] [--workers N] [--deadline-cap DUR]
/// [--max-states N] [--shards N]`: run the resident analyzer until a
/// client sends a shutdown frame.
fn run_serve(args: &[String]) -> i32 {
    let mut opts = ServeOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                match args.get(i) {
                    Some(a) => opts.addr = a.clone(),
                    None => {
                        eprintln!("error: --addr needs host:port");
                        return 2;
                    }
                }
            }
            "--workers" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => opts.workers = n,
                    _ => {
                        eprintln!("error: --workers needs a count >= 1");
                        return 2;
                    }
                }
            }
            "--deadline-cap" => {
                i += 1;
                match args.get(i).and_then(|s| parse_deadline(s)) {
                    Some(d) => opts.deadline_cap = Some(d),
                    None => {
                        eprintln!("error: --deadline-cap needs a duration like 2s or 500ms");
                        return 2;
                    }
                }
            }
            "--max-states" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => opts.max_states_cap = n,
                    _ => {
                        eprintln!("error: --max-states needs a positive state budget");
                        return 2;
                    }
                }
            }
            "--shards" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => opts.shards = n,
                    _ => {
                        eprintln!("error: --shards needs a count >= 1");
                        return 2;
                    }
                }
            }
            other => {
                eprintln!("error: unknown serve argument {other}");
                return 2;
            }
        }
        i += 1;
    }
    let server = match Server::bind(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            return 2;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("error: {e}");
            return 5;
        }
    }
    match server.run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            5
        }
    }
}

/// `repstream client [--addr A] <ping|stats|shutdown|analyze FILE …|
/// search FILE …|scale FILE --procs 2,4,…>`: one wire request against a
/// running server, mapped to the documented exit taxonomy.
fn run_client(args: &[String]) -> i32 {
    let mut addr = ServeOptions::default().addr;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--addr" {
            i += 1;
            match args.get(i) {
                Some(a) => addr = a.clone(),
                None => {
                    eprintln!("error: --addr needs host:port");
                    return 2;
                }
            }
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    let req = match build_client_request(&rest) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            return 2;
        }
    };
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: connect {addr}: {e}");
            return 2;
        }
    };
    let resp = match client.call(&req) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 5;
        }
    };
    print_client_response(&resp);
    response_exit_code(&resp)
}

/// Parse the client subcommand words into one wire [`Request`].
fn build_client_request(rest: &[String]) -> Result<Request, String> {
    match rest.first().map(String::as_str) {
        Some("ping") => Ok(Request::Ping),
        Some("stats") => Ok(Request::Stats),
        Some("shutdown") => Ok(Request::Shutdown),
        Some("analyze") => {
            let (path, options) = client_analyze_args(&rest[1..])?;
            let system = load(&path)?;
            Ok(Request::Analyze(AnalyzeRequest { system, options }))
        }
        Some("search") => {
            let mut path = None;
            let mut req = SearchRequest {
                app: Application::new(vec![1.0], vec![]).map_err(|e| e.to_string())?,
                platform: Platform::complete(vec![1.0], 1.0).map_err(|e| e.to_string())?,
                random_candidates: 512,
                seed: 2010,
                exp_rerank: true,
                lumping: true,
                deadline_ms: None,
            };
            let mut i = 0;
            while i < rest.len() - 1 {
                i += 1;
                match rest[i].as_str() {
                    "--candidates" => {
                        i += 1;
                        req.random_candidates = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or("--candidates needs a count")?;
                    }
                    "--seed" => {
                        i += 1;
                        req.seed = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or("--seed needs a u64")?;
                    }
                    "--no-exp" => req.exp_rerank = false,
                    "--no-lump" => req.lumping = false,
                    "--deadline" => {
                        i += 1;
                        let d = rest
                            .get(i)
                            .and_then(|s| parse_deadline(s))
                            .ok_or("--deadline needs a duration like 2s or 500ms")?;
                        req.deadline_ms = Some(d.as_millis() as u64);
                    }
                    other if path.is_none() && !other.starts_with('-') => {
                        path = Some(other.to_string())
                    }
                    other => return Err(format!("unknown client search argument {other}")),
                }
            }
            let sys = load(&path.ok_or("client search needs an .rsys file")?)?;
            req.app = sys.app().clone();
            req.platform = sys.platform().clone();
            Ok(Request::Search(req))
        }
        Some("scale") => {
            let mut path = None;
            let mut counts: Vec<usize> = Vec::new();
            let mut i = 0;
            while i < rest.len() - 1 {
                i += 1;
                match rest[i].as_str() {
                    "--procs" => {
                        i += 1;
                        counts = rest
                            .get(i)
                            .map(|s| s.split(',').map(|t| t.trim().parse()).collect())
                            .transpose()
                            .ok()
                            .flatten()
                            .ok_or("--procs needs counts like 2,4,6")?;
                    }
                    other if path.is_none() && !other.starts_with('-') => {
                        path = Some(other.to_string())
                    }
                    other => return Err(format!("unknown client scale argument {other}")),
                }
            }
            if counts.is_empty() {
                return Err("client scale needs --procs 2,4,…".into());
            }
            let system = load(&path.ok_or("client scale needs an .rsys file")?)?;
            Ok(Request::Scale(ScaleRequest {
                system,
                processor_counts: counts,
            }))
        }
        _ => Err("client needs ping|stats|shutdown|analyze|search|scale".into()),
    }
}

/// Parse `client analyze` flags (the one-shot `analyze` surface, minus
/// the local-only spill knob, plus the wire deadline).
fn client_analyze_args(args: &[String]) -> Result<(String, WireOptions), String> {
    let mut path = None;
    let mut o = WireOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-lump" => o.lumping = false,
            "--interner-spill" => o.interner_spill = true,
            "--threads" => {
                i += 1;
                o.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a count (0 = auto)")?;
            }
            "--solver" => {
                i += 1;
                o.solver = args
                    .get(i)
                    .and_then(|s| SolverChoice::parse(s))
                    .ok_or("--solver needs auto|gth|gs|gmres|gmres-plain|sor|power")?;
            }
            "--max-states" => {
                i += 1;
                o.max_states = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--max-states needs a positive state budget")?;
            }
            "--deadline" => {
                i += 1;
                let d = args
                    .get(i)
                    .and_then(|s| parse_deadline(s))
                    .ok_or("--deadline needs a duration like 2s or 500ms")?;
                o.deadline_ms = Some(d.as_millis() as u64);
            }
            "--degrade" => {
                i += 1;
                o.degrade = match args.get(i).map(String::as_str) {
                    Some("bounds") => DegradeMode::Bounds,
                    Some("fail") => DegradeMode::Fail,
                    _ => return Err("--degrade needs bounds|fail".into()),
                };
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => return Err(format!("unknown client analyze argument {other}")),
        }
        i += 1;
    }
    Ok((path.ok_or("client analyze needs an .rsys file")?, o))
}

/// Render a served response the way the one-shot commands print theirs.
fn print_client_response(resp: &Response) {
    match resp {
        Response::Pong => println!("pong"),
        Response::Analyze(a) => {
            print!("{}", a.text);
            match a.status {
                ReportStatus::OverBudget => eprintln!("error: over the state budget (exit 3)"),
                ReportStatus::Interrupted(r) => {
                    eprintln!("error: interrupted ({}) (exit 4)", r.label())
                }
                ReportStatus::Internal => eprintln!("error: internal analysis failure (exit 5)"),
                ReportStatus::Ok | ReportStatus::Degraded(_) => {}
            }
        }
        Response::Report(r) => {
            println!("throughput {:.6}", r.throughput);
            println!(
                "states {} (lumped {}) method {} solver {} iterations {} residual {:.3e}",
                r.full_states,
                r.lumped_states
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "-".into()),
                r.method.label(),
                r.solver.label(),
                r.iterations,
                r.residual
            );
        }
        Response::Search(s) => {
            println!("origin      det-throughput  exp-throughput  teams");
            for c in &s.finalists {
                let exp = c
                    .exp
                    .map(|e| format!("{e:>14.5}"))
                    .unwrap_or_else(|| format!("{:>14}", "-"));
                println!("{:<11} {:>14.5}  {exp}  {:?}", c.origin, c.det, c.teams);
            }
            println!(
                "evaluations: {} det + {} delta recomputes + {} exp \
                 (chain cache: {} hits / {} misses)",
                s.det_evaluations,
                s.delta_recomputes,
                s.exp_evaluations,
                s.cache_hits,
                s.cache_misses
            );
        }
        Response::Scale(s) => {
            println!("processors  det-throughput  teams");
            for p in &s.points {
                println!(
                    "{:<11} {:>14.5}  {:?}",
                    p.processors, p.det_throughput, p.teams
                );
            }
        }
        Response::Stats(s) => {
            println!(
                "requests {} connections {} workers {} shards {}",
                s.requests, s.connections, s.workers, s.shards
            );
            println!(
                "cache: pattern {} hits / {} misses, strict {} hits / {} misses",
                s.cache.pattern_hits,
                s.cache.pattern_misses,
                s.cache.strict_hits,
                s.cache.strict_misses
            );
        }
        Response::ShuttingDown => println!("server shutting down"),
        Response::Error(e) => eprintln!("error (class {}): {}", e.class, e.message),
        Response::Solve(r) => println!(
            "solve: {} states, solver {}, {} iterations, residual {:.3e}",
            r.pi.len(),
            r.solver.label(),
            r.iterations,
            r.residual
        ),
    }
}

/// `repstream search [SCENARIO|FILE] [--scenario NAME] [--model M]
/// [--candidates N] [--seed N] [--no-exp] [--no-lump] [--threads N]
/// [--solver S] [--objective O] [--apps K]`.
fn run_search(args: &[String]) -> i32 {
    let mut scenario = "mapping-search".to_string();
    let mut opts = PortfolioOptions::default();
    let mut objective: Option<Objective> = None;
    let mut apps = 2usize;
    let mut scenario_set = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scenario" => {
                i += 1;
                match args.get(i) {
                    Some(name) => {
                        scenario = name.clone();
                        scenario_set = true;
                    }
                    None => {
                        eprintln!("error: --scenario needs a name");
                        return 2;
                    }
                }
            }
            "--objective" => {
                i += 1;
                match args.get(i).and_then(|s| Objective::parse(s)) {
                    Some(o) => objective = Some(o),
                    None => {
                        eprintln!("error: --objective needs maxmin|weighted|sla");
                        return 2;
                    }
                }
            }
            "--apps" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(k) if k >= 1 => apps = k,
                    _ => {
                        eprintln!("error: --apps needs a count >= 1");
                        return 2;
                    }
                }
            }
            "--model" => {
                i += 1;
                opts.model = match args.get(i).map(String::as_str) {
                    Some("overlap") => ExecModel::Overlap,
                    Some("strict") => ExecModel::Strict,
                    other => {
                        eprintln!(
                            "error: --model needs overlap|strict, got {}",
                            other.unwrap_or("nothing")
                        );
                        return 2;
                    }
                };
            }
            "--candidates" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => opts.random_candidates = n,
                    None => {
                        eprintln!("error: --candidates needs a count");
                        return 2;
                    }
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => opts.seed = n,
                    None => {
                        eprintln!("error: --seed needs a u64");
                        return 2;
                    }
                }
            }
            "--no-exp" => opts.exp_rerank = false,
            "--no-lump" => opts.lumping = false,
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => opts.threads = n,
                    None => {
                        eprintln!("error: --threads needs a count (0 = auto)");
                        return 2;
                    }
                }
            }
            "--solver" => {
                i += 1;
                match args.get(i).and_then(|s| SolverChoice::parse(s)) {
                    Some(c) => opts.solver = c,
                    None => {
                        eprintln!("error: --solver needs auto|gth|gs|gmres|sor|power");
                        return 2;
                    }
                }
            }
            "--deadline" => {
                i += 1;
                match args.get(i).and_then(|s| parse_deadline(s)) {
                    Some(d) => opts.budget = Budget::deadline_in(d),
                    None => {
                        eprintln!("error: --deadline needs a duration like 2s or 500ms");
                        return 2;
                    }
                }
            }
            other if !scenario_set && !other.starts_with('-') => {
                scenario = other.to_string();
                scenario_set = true;
            }
            other => {
                eprintln!("error: unknown search argument {other}");
                return 2;
            }
        }
        i += 1;
    }

    if scenario == "workload" {
        return run_workload_search(apps, objective.unwrap_or(Objective::MaxMin), &opts);
    }
    if objective.is_some() {
        eprintln!("error: --objective only applies to the workload scenario");
        return 2;
    }

    let (app, platform) = match scenario.as_str() {
        "mapping-search" => scenarios::mapping_search(),
        "example-a" => {
            let sys = example_a();
            (sys.app().clone(), sys.platform().clone())
        }
        path => match load(path) {
            Ok(sys) => (sys.app().clone(), sys.platform().clone()),
            Err(e) => {
                eprintln!("error: {scenario} is neither a scenario (mapping-search, example-a) nor a readable .rsys file: {e}");
                return 2;
            }
        },
    };

    let report = match portfolio_search(&app, &platform, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return if e.interrupt().is_some() { 4 } else { 2 };
        }
    };
    println!(
        "portfolio search on `{scenario}` ({}, {} random candidates, seed {})",
        opts.model.label(),
        opts.random_candidates,
        opts.seed
    );
    println!("origin      det-throughput  exp-throughput  teams");
    for c in &report.finalists {
        let exp = c
            .exp
            .map(|e| format!("{e:>14.5}"))
            .unwrap_or_else(|| format!("{:>14}", "-"));
        println!(
            "{:<11} {:>14.5}  {exp}  {:?}",
            c.origin,
            c.det,
            c.mapping.teams()
        );
    }
    println!(
        "evaluations: {} det (batch) + {} delta column recomputes + {} exp \
         (chain cache: {} hits / {} misses)",
        report.det_evaluations,
        report.delta_recomputes,
        report.exp_evaluations,
        report.exp_cache.hits(),
        report.exp_cache.misses(),
    );
    0
}

/// `repstream search --scenario workload`: the K-app joint search on the
/// shared 12-processor platform.
fn run_workload_search(apps: usize, objective: Objective, portfolio: &PortfolioOptions) -> i32 {
    let workload = scenarios::shared_platform(apps);
    let opts = WorkloadSearchOptions {
        model: portfolio.model,
        objective,
        random_candidates: portfolio.random_candidates,
        seed: portfolio.seed,
        exp_rerank: portfolio.exp_rerank,
        lumping: portfolio.lumping,
        threads: portfolio.threads,
        solver: portfolio.solver,
        budget: portfolio.budget,
        ..WorkloadSearchOptions::default()
    };
    let report = match workload_search(&workload, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return if e.interrupt().is_some() { 4 } else { 2 };
        }
    };
    println!(
        "workload search: {apps} apps on {} shared processors ({}, objective {}, \
         {} random candidates, seed {})",
        workload.platform().n_processors(),
        opts.model.label(),
        objective.label(),
        opts.random_candidates,
        opts.seed
    );
    println!("origin      det-objective   exp-objective");
    for c in &report.finalists {
        let exp = c
            .exp_objective
            .map(|e| format!("{e:>14.5}"))
            .unwrap_or_else(|| format!("{:>14}", "-"));
        println!("{:<11} {:>14.5}  {exp}", c.origin, c.objective);
    }
    println!("winner ({}):", report.best.origin);
    println!("  app  weight  sla          det-throughput  exp-throughput  teams");
    for (k, app) in workload.apps().iter().enumerate() {
        let sla = app
            .sla()
            .map(|s| {
                let rho = report
                    .best
                    .exp_per_app
                    .as_ref()
                    .map_or(report.best.per_app[k], |e| e[k]);
                format!("{s:.4}{}", if rho >= s { " ok" } else { " MISS" })
            })
            .unwrap_or_else(|| "-".to_string());
        let exp = report
            .best
            .exp_per_app
            .as_ref()
            .map(|e| format!("{:>14.5}", e[k]))
            .unwrap_or_else(|| format!("{:>14}", "-"));
        println!(
            "  {k:<4} {:<7} {sla:<12} {:>14.5}  {exp}  {:?}",
            app.weight(),
            report.best.per_app[k],
            report.best.joint.mapping(k).teams()
        );
    }
    println!(
        "contention: {} shared processors, {} shared directed links, \
         busiest processor carries {} apps",
        report.contention.shared_processors,
        report.contention.shared_links,
        report.contention.max_processor_users
    );
    println!(
        "evaluations: {} det (batch) + {} delta column recomputes + {} exp \
         (shared chain cache: {} hits / {} misses)",
        report.det_evaluations,
        report.delta_recomputes,
        report.exp_evaluations,
        report.exp_cache.hits(),
        report.exp_cache.misses(),
    );
    0
}

fn usage() -> i32 {
    eprintln!(
        "usage: repstream <analyze FILE [--no-lump] [--threads N] [--solver S] \
         [--max-states N] [--interner-spill] [--deadline DUR] [--degrade bounds|fail] | \
         dot FILE [overlap|strict] | \
         example-a | search [SCENARIO|FILE] [--model overlap|strict] [--candidates N] [--seed N] \
         [--no-exp] [--no-lump] [--threads N] [--solver S] [--deadline DUR] \
         [--scenario workload --apps K --objective maxmin|weighted|sla] | \
         serve [--addr A] [--workers N] [--deadline-cap DUR] [--max-states N] [--shards N] | \
         client [--addr A] (ping | stats | shutdown | analyze FILE [flags] | \
         search FILE [--candidates N] [--seed N] [--no-exp] [--no-lump] [--deadline DUR] | \
         scale FILE --procs 2,4,6)>  \
         (S: auto|gth|gs|gmres|gmres-plain|sor|power; DUR: 2s, 500ms; \
         exit codes: 0 ok/degraded, 2 config, 3 over-budget, 4 interrupted, 5 internal)"
    );
    2
}

fn load(path: &str) -> Result<System, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let sys = parse_system(&text)?;
    // A structurally valid system can still derive a broken timing
    // table (a subnormal bandwidth divides to an infinite transfer
    // time, whose exponential rate is 0 — the chain builders reject
    // that deep inside the Markov layer).  Catching it here keeps the
    // failure in the configuration class (exit 2), with the offending
    // resource named, instead of a panic.
    timing::validate_service_times(&sys)?;
    Ok(sys)
}

/// Parse the `.rsys` line format (see the module docs).
pub fn parse_system(text: &str) -> Result<System, String> {
    let mut work: Option<Vec<f64>> = None;
    let mut files: Vec<f64> = Vec::new();
    let mut speeds: Option<Vec<f64>> = None;
    let mut default_bw: Option<f64> = None;
    let mut links: Vec<(usize, usize, f64)> = Vec::new();
    let mut teams: Vec<Vec<usize>> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let key = it.next().unwrap();
        let rest: Vec<&str> = it.collect();
        let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
        let floats = |rest: &[&str]| -> Result<Vec<f64>, String> {
            rest.iter()
                .map(|t| {
                    t.parse::<f64>()
                        .map_err(|_| err(&format!("bad number {t}")))
                })
                .collect()
        };
        match key {
            "stages" => { /* informational; validated against work below */ }
            "work" => work = Some(floats(&rest)?),
            "files" => files = floats(&rest)?,
            "speeds" => speeds = Some(floats(&rest)?),
            "bandwidth" => {
                default_bw = Some(
                    rest.first()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bandwidth needs one number"))?,
                )
            }
            "link" => {
                if rest.len() != 3 {
                    return Err(err("link needs: src dst bandwidth"));
                }
                let p: usize = rest[0].parse().map_err(|_| err("bad src"))?;
                let q: usize = rest[1].parse().map_err(|_| err("bad dst"))?;
                let b: f64 = rest[2].parse().map_err(|_| err("bad bandwidth"))?;
                links.push((p, q, b));
            }
            "team" => {
                let ids: Result<Vec<usize>, _> = rest.iter().map(|t| t.parse()).collect();
                teams.push(ids.map_err(|_| err("bad processor id"))?);
            }
            other => return Err(err(&format!("unknown key {other}"))),
        }
    }

    let work = work.ok_or("missing `work` line")?;
    let speeds = speeds.ok_or("missing `speeds` line")?;
    let bw = default_bw.ok_or("missing `bandwidth` line")?;
    let app = Application::new(work, files).map_err(|e| e.to_string())?;
    let mut platform = Platform::complete(speeds, bw).map_err(|e| e.to_string())?;
    for (p, q, b) in links {
        if p >= platform.n_processors() || q >= platform.n_processors() {
            return Err(format!("link {p}->{q}: processor out of range"));
        }
        platform
            .set_bandwidth(p, q, b)
            .map_err(|e| format!("link {p}->{q}: {e}"))?;
    }
    let mapping = Mapping::new(teams).map_err(|e| e.to_string())?;
    System::new(app, platform, mapping).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::parse_system;

    const EXAMPLE: &str = "
# Example A-like instance
stages    4
work      52 95 120 60
files     57 300 73
speeds    165 73 77 126 147 128 186
bandwidth 104
link      1 3 22
link      1 4 22
link      1 5 22
team      0
team      1 2
team      3 4 5
team      6
";

    #[test]
    fn parses_the_documented_format() {
        let sys = parse_system(EXAMPLE).unwrap();
        assert_eq!(sys.shape().teams(), &[1, 2, 3, 1]);
        assert_eq!(sys.platform().bandwidth(1, 3), 22.0);
        assert_eq!(sys.platform().bandwidth(0, 1), 104.0);
        assert_eq!(sys.app().file_size(1), 300.0);
    }

    #[test]
    fn reports_missing_sections() {
        assert!(parse_system("work 1 2\nfiles 3")
            .unwrap_err()
            .contains("speeds"));
        assert!(parse_system("speeds 1\nbandwidth 1\nteam 0")
            .unwrap_err()
            .contains("work"));
    }

    #[test]
    fn reports_bad_lines_with_numbers() {
        let err = parse_system("work 1 x").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_system("work 1\nnope 3").unwrap_err();
        assert!(err.contains("unknown key nope"), "{err}");
    }

    #[test]
    fn validates_model_semantics() {
        // Reused processor.
        let err =
            parse_system("work 1 1\nfiles 1\nspeeds 1 1\nbandwidth 1\nteam 0\nteam 0").unwrap_err();
        assert!(err.contains("more than one stage"), "{err}");
    }
}
