//! Cross-crate property checks of the paper's theorems on random systems.

use proptest::prelude::*;
use repstream::core::model::{Application, Mapping, Platform, System};
use repstream::core::{deterministic, exponential};
use repstream::petri::shape::ExecModel;

fn arb_system() -> impl Strategy<Value = System> {
    // 2–3 stages, teams of 1–3 processors, heterogeneous speeds/links.
    (
        proptest::collection::vec(1usize..4, 2..4),
        proptest::collection::vec(0.5..4.0f64, 12),
        proptest::collection::vec(0.5..4.0f64, 16),
    )
        .prop_map(|(teams, speeds, bws)| {
            let n = teams.len();
            let total: usize = teams.iter().sum();
            let app = Application::new((0..n).map(|i| 2.0 + i as f64).collect(), vec![3.0; n - 1])
                .unwrap();
            let sp: Vec<f64> = (0..total).map(|p| speeds[p % speeds.len()]).collect();
            let mut platform = Platform::complete(sp, 1.0).unwrap();
            for p in 0..total {
                for q in 0..total {
                    if p != q {
                        platform
                            .set_bandwidth(p, q, bws[(3 * p + q) % bws.len()])
                            .unwrap();
                    }
                }
            }
            let mut teams_v = Vec::new();
            let mut next = 0;
            for &r in &teams {
                teams_v.push((next..next + r).collect::<Vec<_>>());
                next += r;
            }
            System::new(app, platform, Mapping::new(teams_v).unwrap()).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(50))]

    #[test]
    fn exponential_never_exceeds_deterministic(sys in arb_system()) {
        // Theorem 7's two extremes for the Overlap model.
        let det = deterministic::analyze(&sys, ExecModel::Overlap).throughput;
        let exp = exponential::throughput_overlap(&sys).unwrap().throughput;
        prop_assert!(exp <= det * (1.0 + 1e-9), "exp {exp} > det {det}");
    }

    #[test]
    fn strict_never_exceeds_overlap(sys in arb_system()) {
        let ov = deterministic::analyze(&sys, ExecModel::Overlap).throughput;
        let st = deterministic::analyze(&sys, ExecModel::Strict).throughput;
        prop_assert!(st <= ov * (1.0 + 1e-9), "strict {st} > overlap {ov}");
    }

    #[test]
    fn columnwise_equals_global(sys in arb_system()) {
        // Theorem 1's algorithm is exact.
        let global = deterministic::analyze(&sys, ExecModel::Overlap).throughput;
        let colwise = deterministic::throughput_columnwise(&sys);
        prop_assert!(
            (global - colwise).abs() < 1e-9 * global,
            "global {global} vs columnwise {colwise}"
        );
    }

    #[test]
    fn throughput_bounded_by_mct(sys in arb_system()) {
        // §2.3: 1/Mct is an upper bound in both models.
        for model in [ExecModel::Overlap, ExecModel::Strict] {
            let rep = deterministic::analyze(&sys, model);
            prop_assert!(rep.throughput <= rep.bound_throughput * (1.0 + 1e-9));
        }
    }

    #[test]
    fn time_scaling_scales_throughput(sys in arb_system(), c in 0.5..3.0f64) {
        // Scaling every speed and bandwidth by c multiplies ρ by c —
        // a consistency check across model → timing → analysis.
        let base = deterministic::analyze(&sys, ExecModel::Overlap).throughput;
        let total = sys.platform().n_processors();
        let speeds: Vec<f64> = (0..total).map(|p| sys.platform().speed(p) * c).collect();
        let mut platform = Platform::complete(speeds, 1.0).unwrap();
        for p in 0..total {
            for q in 0..total {
                if p != q {
                    platform
                        .set_bandwidth(p, q, sys.platform().bandwidth(p, q) * c)
                        .unwrap();
                }
            }
        }
        let scaled = System::new(
            sys.app().clone(),
            platform,
            sys.mapping().clone(),
        ).unwrap();
        let fast = deterministic::analyze(&scaled, ExecModel::Overlap).throughput;
        prop_assert!((fast - c * base).abs() < 1e-9 * fast.max(1.0),
            "{fast} vs {}", c * base);
    }
}
