//! Serving-layer lifecycle (satellite): an in-process server on an
//! ephemeral port must answer concurrent clients, degrade (not die)
//! when a client's deadline fires, survive peers that disconnect
//! mid-request or talk garbage, and drain in-flight work on shutdown.
//! Plus the exit-taxonomy pin: an `.rsys` that fails validation exits
//! the one-shot CLI with the configuration code 2, not a panic.

use repstream::core::report::{system_report_status, ReportOptions, ReportStatus};
use repstream::core::wire::{write_frame, AnalyzeRequest, Request, Response, WireOptions};
use repstream::serve::{Client, ServeOptions, Server};
use repstream::workload::examples::example_a;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::process::Command;
use std::time::Duration;

fn test_server(workers: usize) -> (std::sync::Arc<Server>, SocketAddr) {
    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers,
        ..Default::default()
    })
    .expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr");
    (std::sync::Arc::new(server), addr)
}

#[test]
fn concurrent_clients_deadlines_and_disconnects() {
    let (server, addr) = test_server(2);
    let run = {
        let server = server.clone();
        std::thread::spawn(move || server.run())
    };

    let sys = example_a();
    let (oneshot_text, oneshot_status) = system_report_status(&sys, ReportOptions::default());
    assert_eq!(oneshot_status, ReportStatus::Ok);

    // Several concurrent clients ask for the same system; every answer
    // must be byte-identical to the one-shot CLI report.
    std::thread::scope(|s| {
        for _ in 0..4 {
            let sys = &sys;
            let oneshot_text = &oneshot_text;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..2 {
                    let resp = client
                        .call(&Request::Analyze(AnalyzeRequest {
                            system: sys.clone(),
                            options: WireOptions::default(),
                        }))
                        .expect("analyze");
                    match resp {
                        Response::Analyze(a) => {
                            assert_eq!(a.status, ReportStatus::Ok);
                            assert_eq!(
                                &a.text, oneshot_text,
                                "served text differs from one-shot report"
                            );
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            });
        }
    });

    // A client with an already-expired deadline (0 ms) under
    // degrade=bounds gets a *degraded* response — the ladder works per
    // connection, and the server keeps running.
    let mut client = Client::connect(addr).expect("connect");
    let resp = client
        .call(&Request::Analyze(AnalyzeRequest {
            system: sys.clone(),
            options: WireOptions {
                deadline_ms: Some(0),
                ..Default::default()
            },
        }))
        .expect("deadline analyze");
    match resp {
        Response::Analyze(a) => {
            assert!(
                matches!(a.status, ReportStatus::Degraded(_)),
                "expired deadline must degrade, got {:?}",
                a.status
            );
            assert!(
                a.text.contains("degraded=yes method=bounds-fallback"),
                "degraded provenance missing from:\n{}",
                a.text
            );
        }
        other => panic!("unexpected response {other:?}"),
    }
    // Workers serve a connection until it closes: release ours so the
    // later clients in this test are not starved behind an idle socket.
    drop(client);

    // A peer that promises a 100-byte frame, sends 3, and vanishes: its
    // worker drops the connection and the server stays up.
    {
        let mut rude = TcpStream::connect(addr).expect("connect");
        rude.write_all(&100u32.to_le_bytes()).unwrap();
        rude.write_all(&[1, 2, 3]).unwrap();
        drop(rude);
    }
    // A peer that sends a well-framed garbage body gets a structured
    // class-2 error back, not silence.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write_frame(&mut stream, &[99u8, 99, 99]).expect("write garbage frame");
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        match repstream::core::wire::read_response(&mut reader) {
            Ok(Some(Response::Error(e))) => assert_eq!(e.class, 2, "{}", e.message),
            other => panic!("expected class-2 error, got {other:?}"),
        }
    }

    // Still alive after both abuses.
    let mut client = Client::connect(addr).expect("reconnect");
    assert!(matches!(
        client.call(&Request::Ping).expect("ping"),
        Response::Pong
    ));
    drop(client);

    // Shutdown drains in-flight work: C1's analyze is mid-service when
    // C2 requests shutdown; C1 must still receive its full answer.
    let mut c1 = Client::connect(addr).expect("c1");
    let mut c2 = Client::connect(addr).expect("c2");
    let sys2 = sys.clone();
    let oneshot = oneshot_text.clone();
    let inflight = std::thread::spawn(move || {
        let resp = c1
            .call(&Request::Analyze(AnalyzeRequest {
                system: sys2,
                options: WireOptions::default(),
            }))
            .expect("in-flight analyze");
        match resp {
            Response::Analyze(a) => assert_eq!(a.text, oneshot),
            other => panic!("unexpected response {other:?}"),
        }
    });
    std::thread::sleep(Duration::from_millis(20));
    assert!(matches!(
        c2.call(&Request::Shutdown).expect("shutdown"),
        Response::ShuttingDown
    ));
    drop(c2);
    inflight.join().expect("in-flight client");

    run.join().expect("server thread").expect("clean shutdown");

    // The port is really quiet now (the listener closes with the last
    // Server handle).
    drop(server);
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err(),
        "listener must be closed after shutdown"
    );
}

#[test]
fn warm_hits_accumulate_in_shared_cache_stats() {
    let (server, addr) = test_server(2);
    let run = {
        let server = server.clone();
        std::thread::spawn(move || server.run())
    };
    let sys = example_a();
    let mut client = Client::connect(addr).expect("connect");
    for _ in 0..3 {
        let resp = client
            .call(&Request::Analyze(AnalyzeRequest {
                system: sys.clone(),
                options: WireOptions::default(),
            }))
            .expect("analyze");
        assert!(matches!(resp, Response::Analyze(_)));
    }
    match client.call(&Request::Stats).expect("stats") {
        Response::Stats(s) => {
            assert_eq!(s.cache.strict_misses, 1, "one BFS for three requests");
            assert!(s.cache.strict_hits >= 2, "later requests must be warm");
            assert_eq!(s.workers, 2);
        }
        other => panic!("unexpected response {other:?}"),
    }
    let _ = client.call(&Request::Shutdown).expect("shutdown");
    drop(client);
    run.join().expect("server thread").expect("clean shutdown");
}

/// S4 pin: a structurally valid `.rsys` whose *derived* service times
/// are broken (subnormal bandwidth ⇒ infinite transfer time) must exit
/// with the configuration code 2 — not an internal panic code.
#[test]
fn invalid_rsys_exits_with_config_code() {
    let dir = std::env::temp_dir();
    let bad = dir.join(format!("repstream_bad_{}.rsys", std::process::id()));
    std::fs::write(
        &bad,
        "stages 2\nwork 100 200\nfiles 300\nspeeds 1 1\nbandwidth 1e-320\nteam 0\nteam 1\n",
    )
    .expect("write bad rsys");

    let out = Command::new(env!("CARGO_BIN_EXE_repstream"))
        .args(["analyze", bad.to_str().unwrap()])
        .output()
        .expect("run repstream analyze");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "validation failure must exit 2 (config), stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("service time"),
        "error must name the derived-time problem, got:\n{stderr}"
    );

    // Control: the same file with a sane bandwidth analyzes fine.
    let good = dir.join(format!("repstream_good_{}.rsys", std::process::id()));
    std::fs::write(
        &good,
        "stages 2\nwork 100 200\nfiles 300\nspeeds 1 1\nbandwidth 10\nteam 0\nteam 1\n",
    )
    .expect("write good rsys");
    let out = Command::new(env!("CARGO_BIN_EXE_repstream"))
        .args(["analyze", good.to_str().unwrap()])
        .output()
        .expect("run repstream analyze");
    assert_eq!(out.status.code(), Some(0));

    let _ = std::fs::remove_file(&bad);
    let _ = std::fs::remove_file(&good);
}
