//! End-to-end integration across all crates on the paper's Example A:
//! model → TPN → analyses → simulators must tell one consistent story.

use repstream::core::simulate::{throughput_once, MonteCarloOptions, SimEngine};
use repstream::core::{bounds, deterministic, exponential, timing};
use repstream::petri::shape::ExecModel;
use repstream::stochastic::law::LawFamily;
use repstream::workload::examples::{example_a, seven_stage_pipeline};

#[test]
fn example_a_full_story() {
    let sys = example_a();

    // Deterministic analysis, both models.
    let ov = deterministic::analyze(&sys, ExecModel::Overlap);
    let st = deterministic::analyze(&sys, ExecModel::Strict);
    assert!((ov.period - 189.0).abs() < 1e-6);
    assert!(st.throughput < ov.throughput);

    // Columnwise Theorem 1 agrees with the global method.
    let colwise = deterministic::throughput_columnwise(&sys);
    assert!((colwise - ov.throughput).abs() < 1e-9 * ov.throughput);

    // All three simulators agree with the analysis (deterministic laws).
    let det_laws = timing::laws(&sys, LawFamily::Deterministic);
    for model in [ExecModel::Overlap, ExecModel::Strict] {
        let analytic = deterministic::analyze(&sys, model).throughput;
        for engine in [SimEngine::EventGraph, SimEngine::Platform, SimEngine::Chain] {
            let v = throughput_once(
                &sys,
                model,
                &det_laws,
                MonteCarloOptions {
                    datasets: 30_000,
                    warmup: 15_000,
                    seed: 1,
                    engine,
                    ..Default::default()
                },
            );
            assert!(
                (v - analytic).abs() < 0.01 * analytic,
                "{model:?}/{}: {v} vs {analytic}",
                engine.label()
            );
        }
    }

    // Exponential decomposition matches the event-graph simulator.
    let exp = exponential::throughput_overlap(&sys).unwrap();
    let exp_laws = timing::laws(&sys, LawFamily::Exponential);
    let sim = throughput_once(
        &sys,
        ExecModel::Overlap,
        &exp_laws,
        MonteCarloOptions {
            datasets: 300_000,
            warmup: 30_000,
            seed: 2,
            engine: SimEngine::EventGraph,
            ..Default::default()
        },
    );
    assert!(
        (sim - exp.throughput).abs() < 0.02 * exp.throughput,
        "exp analysis {} vs sim {sim}",
        exp.throughput
    );
}

#[test]
fn example_a_nbue_sandwich() {
    let sys = example_a();
    for model in [ExecModel::Overlap, ExecModel::Strict] {
        let b = bounds::nbue_bounds(&sys, model).unwrap();
        assert!(b.lower <= b.upper);
        for fam in [
            LawFamily::Gamma(3.0),
            LawFamily::BetaSym(2.0),
            LawFamily::Weibull(2.0),
        ] {
            let laws = timing::laws(&sys, fam);
            let v = throughput_once(
                &sys,
                model,
                &laws,
                MonteCarloOptions {
                    datasets: 60_000,
                    warmup: 10_000,
                    seed: 3,
                    engine: SimEngine::Chain,
                    ..Default::default()
                },
            );
            assert!(
                b.contains(v, 0.03),
                "{model:?} {}: {v} not in [{}, {}]",
                fam.label(),
                b.lower,
                b.upper
            );
        }
    }
}

#[test]
fn non_nbue_law_can_escape_below() {
    // A DFR law (Pareto) on the seven-stage system should fall *below*
    // the exponential bound — the escape direction Theorem 7 permits.
    let sys = seven_stage_pipeline();
    let b = bounds::nbue_bounds(&sys, ExecModel::Overlap).unwrap();
    let laws = timing::laws(&sys, LawFamily::Pareto(1.5));
    let v = throughput_once(
        &sys,
        ExecModel::Overlap,
        &laws,
        MonteCarloOptions {
            datasets: 60_000,
            warmup: 10_000,
            seed: 4,
            engine: SimEngine::Chain,
            ..Default::default()
        },
    );
    assert!(
        v < b.lower,
        "Pareto(1.5) run {v} did not drop below the exponential bound {}",
        b.lower
    );
}
