//! Quickstart: analyse the paper's Example A end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the four-stage pipeline mapped on seven processors
//! (replication 1/2/3/1), then computes its throughput every way the
//! library knows: deterministic critical cycles (both execution models),
//! the exponential decomposition, the N.B.U.E. sandwich, and a simulation
//! cross-check.

use repstream::core::simulate::{throughput_once, MonteCarloOptions, SimEngine};
use repstream::core::{bounds, deterministic, exponential, timing};
use repstream::petri::shape::ExecModel;
use repstream::stochastic::law::LawFamily;
use repstream::workload::examples::example_a;

fn main() {
    let system = example_a();
    println!(
        "Example A: 4 stages on 7 processors, teams {:?}",
        system.shape().teams()
    );
    println!("paths (TPN rows): {}\n", system.shape().n_paths());

    // --- deterministic analysis (Section 4) ----------------------------
    for model in [ExecModel::Overlap, ExecModel::Strict] {
        let det = deterministic::analyze(&system, model);
        println!("[{}] deterministic:", model.label());
        println!("  period P          = {:.4}", det.period);
        println!("  throughput m/P    = {:.6}", det.throughput);
        println!("  Mct bound 1/Mct   = {:.6}", det.bound_throughput);
        println!("  critical resource = {}", det.has_critical_resource);
        for r in &det.critical_resources {
            println!("    on critical cycle: {r}");
        }
    }

    // --- exponential laws (Section 5) ----------------------------------
    let exp = exponential::throughput_overlap(&system).expect("decomposition");
    println!(
        "\n[overlap] exponential (Theorem 3/4): {:.6}",
        exp.throughput
    );
    println!(
        "  bottleneck: {:?} at rate {:.6}",
        exp.bottleneck.place, exp.bottleneck.rate
    );

    // --- the N.B.U.E. sandwich (Theorem 7) ------------------------------
    let b = bounds::nbue_bounds(&system, ExecModel::Overlap).expect("bounds");
    println!(
        "\nTheorem 7 sandwich (overlap): [{:.6}, {:.6}]",
        b.lower, b.upper
    );

    // --- simulation cross-check ----------------------------------------
    for fam in [
        LawFamily::Deterministic,
        LawFamily::Exponential,
        LawFamily::Gamma(4.0),
    ] {
        let laws = timing::laws(&system, fam);
        let sim = throughput_once(
            &system,
            ExecModel::Overlap,
            &laws,
            MonteCarloOptions {
                datasets: 60_000,
                warmup: 6_000,
                seed: 42,
                engine: SimEngine::EventGraph,
                ..Default::default()
            },
        );
        println!(
            "simulated {:>12}: {:.6}  (inside sandwich: {})",
            fam.label(),
            sim,
            b.contains(sim, 0.02)
        );
    }
}
