//! Release A/B smoke of the resource governor (CI): a deadline armed
//! over the 10M-class 7×8 Strict chain must degrade to the cached
//! N.B.U.E. bounds **within the deadline plus a one-second grace** —
//! the per-BFS-level / per-solver-checkpoint cooperative checks bound
//! how far past the deadline a build can coast.  And with no deadline
//! (or one that never fires) the governor must be bitwise invisible:
//! the report text is byte-identical to the ungoverned run.
//!
//! ```sh
//! cargo run --release --example deadline_ab
//! ```

use repstream::core::model::{Application, Mapping, Platform, System};
use repstream::core::report::{
    system_report, system_report_status, DegradeMode, ReportOptions, ReportStatus,
};
use repstream::markov::govern::{Budget, InterruptReason};
use std::time::{Duration, Instant};

/// A two-stage system whose Strict Theorem 2 chain has the given team
/// sizes (the 7×8 shape is the 14.06M-lumped-state scale record).
fn system_for(teams: (usize, usize)) -> System {
    let (u, v) = teams;
    let app = Application::uniform(2, 6.0, 12.0).expect("valid app");
    let platform = Platform::complete(vec![2.0; u + v], 1.0).expect("valid platform");
    let mapping =
        Mapping::new(vec![(0..u).collect(), (u..u + v).collect()]).expect("valid mapping");
    System::new(app, platform, mapping).expect("valid system")
}

fn main() {
    // Leg 1: the un-fired governor is bitwise invisible.  The 5×6 chain
    // completes well inside an hour, so the far deadline never fires and
    // the governed report must be byte-identical to the ungoverned one.
    let small = system_for((5, 6));
    let t = Instant::now();
    let plain = system_report(&small, ReportOptions::default());
    let t_plain = t.elapsed();
    let governed_opts = ReportOptions {
        budget: Budget::deadline_in(Duration::from_secs(3600)),
        degrade: DegradeMode::Bounds,
        ..Default::default()
    };
    let t = Instant::now();
    let (governed, status) = system_report_status(&small, governed_opts);
    let t_governed = t.elapsed();
    assert_eq!(status, ReportStatus::Ok, "a one-hour deadline never fires");
    assert_eq!(
        plain, governed,
        "an un-fired budget must not change one output byte"
    );
    println!(
        "5x6: governed report byte-identical to ungoverned \
         ({t_plain:.2?} vs {t_governed:.2?})"
    );

    // Leg 2: a 5 s deadline over the 7×8 prefix.  The full build-and-
    // solve runs for minutes; the governor must abort at a BFS level
    // boundary and fall back to the N.B.U.E. sandwich, all within the
    // deadline plus the one-second grace.
    const DEADLINE: Duration = Duration::from_secs(5);
    const GRACE: Duration = Duration::from_secs(1);
    let big = system_for((7, 8));
    let opts = ReportOptions {
        max_states: 1 << 25,
        budget: Budget::deadline_in(DEADLINE),
        degrade: DegradeMode::Bounds,
        ..Default::default()
    };
    let t = Instant::now();
    let (report, status) = system_report_status(&big, opts);
    let elapsed = t.elapsed();
    assert_eq!(
        status,
        ReportStatus::Degraded(InterruptReason::Deadline),
        "the 7x8 build must overrun a 5 s deadline and degrade"
    );
    assert!(
        report.contains("degraded=yes method=bounds-fallback reason=deadline"),
        "degradation provenance missing from the report:\n{report}"
    );
    assert!(
        report.contains("N.B.U.E. fallback: throughput in ["),
        "bounds fallback missing from the report:\n{report}"
    );
    assert!(
        elapsed <= DEADLINE + GRACE,
        "degraded report took {elapsed:.2?}, past the {DEADLINE:?} deadline + {GRACE:?} grace"
    );
    let provenance = report
        .lines()
        .filter(|l| l.contains("degraded=") || l.contains("progress:") || l.contains("fallback"))
        .collect::<Vec<_>>()
        .join("\n");
    println!("7x8 under a {DEADLINE:?} deadline: degraded in {elapsed:.2?}\n{provenance}");
    println!(
        "OK: deadline degradation inside the grace window, un-fired governor bitwise invisible"
    );
}
