//! A realistic streaming workload: a video transcoding pipeline.
//!
//! ```sh
//! cargo run --release --example video_pipeline
//! ```
//!
//! The paper's motivating applications are video/audio encoding chains.
//! This example models a five-stage transcoder —
//! demux → decode → scale → encode → mux — on a small heterogeneous
//! cluster, replicates the expensive stages (frames are independent, i.e.
//! *dealable*), and studies what happens to the 30 fps target under
//! increasingly variable stage times.

use repstream::core::model::{Application, Mapping, Platform, System};
use repstream::core::simulate::{monte_carlo_family, MonteCarloOptions, SimEngine};
use repstream::core::{deterministic, exponential};
use repstream::petri::shape::ExecModel;
use repstream::platformsim;
use repstream::stochastic::law::LawFamily;

fn main() {
    // Works in Mcycles/frame; files in MB/frame (1080p intermediate).
    let app =
        Application::new(vec![2.0, 45.0, 18.0, 120.0, 3.0], vec![1.2, 6.2, 6.2, 0.8]).expect("app");
    // Ten machines: two fast 4 GHz, six 3 GHz, two 2.5 GHz I/O nodes.
    // Speeds in Mcycles/ms so every time is in milliseconds.
    let mut speeds = vec![4.0, 4.0];
    speeds.extend(vec![3.0; 6]);
    speeds.extend(vec![2.5; 2]);
    let platform = Platform::complete(speeds, 1.2).expect("platform"); // 1.2 MB/ms ≈ 10 Gb/s

    // demux/mux on the I/O nodes; decode on a fast machine; encode
    // replicated over four 3 GHz machines; scale over two.
    let mapping = Mapping::new(vec![
        vec![8],
        vec![0],
        vec![1, 2],
        vec![3, 4, 5, 6],
        vec![9],
    ])
    .expect("mapping");
    let system = System::new(app, platform, mapping).expect("system");

    println!(
        "video transcoding pipeline, teams {:?}",
        system.shape().teams()
    );
    let det = deterministic::analyze(&system, ExecModel::Overlap);
    // Throughput is frames per millisecond; ×1000 for fps.
    println!(
        "deterministic throughput: {:.2} fps (period {:.3} ms for m = {} frames)",
        det.throughput * 1000.0,
        det.period,
        det.rows
    );
    let exp = exponential::throughput_overlap(&system).expect("exp");
    println!(
        "exponential   throughput: {:.2} fps — bottleneck {:?}",
        exp.throughput * 1000.0,
        exp.bottleneck.place
    );

    // Can we hold 30 fps under variability?  (works are in Mcycles and
    // speeds in MHz, so throughput is in frames per millisecond.)
    println!("\nlaw sensitivity (10k frames, 8 runs):");
    for fam in [
        LawFamily::Deterministic,
        LawFamily::BetaSym(2.0),
        LawFamily::Gamma(2.0),
        LawFamily::Exponential,
        LawFamily::LogNormal(1.5),
        LawFamily::Pareto(1.7),
    ] {
        let s = monte_carlo_family(
            &system,
            ExecModel::Overlap,
            fam,
            MonteCarloOptions {
                datasets: 10_000,
                warmup: 1_000,
                replications: 8,
                seed: 7,
                engine: SimEngine::Chain,
                total_rate_metric: false,
            },
        );
        let fps = s.mean * 1000.0;
        println!(
            "  {:<12} {:7.2} fps  (±{:.2}, min {:.2})  {}",
            fam.label(),
            fps,
            s.std_dev * 1000.0,
            s.min * 1000.0,
            if fps >= 30.0 {
                "meets 30fps"
            } else {
                "MISSES 30fps"
            }
        );
    }

    // Where does the time go?  Per-resource utilization from the DES.
    let laws = repstream::core::timing::laws(&system, LawFamily::Gamma(2.0));
    let rep = platformsim::simulate(
        &system.shape(),
        ExecModel::Overlap,
        &laws,
        platformsim::SimOptions {
            datasets: 20_000,
            warmup: 2_000,
            seed: 9,
            ..Default::default()
        },
    );
    println!("\nbusiest resources (Gamma(2) run):");
    let mut util = rep.utilization.clone();
    util.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (r, u) in util.iter().take(6) {
        println!("  {r}  {:5.1}%", u * 100.0);
    }
}
