//! Serving-layer smoke: an in-process `repstream serve` answering a
//! mixed 50-query battery from concurrent clients.
//!
//! ```sh
//! cargo run --release --example serve_smoke -- --threads 2
//! ```
//!
//! Two client threads fire 25 queries each — a repeated hot shape, cold
//! per-query shapes, pings, and a deadline-capped request that must
//! come back `degraded` — then the example asserts the shared-cache
//! warm-hit ratio is positive, every repeated-shape response is
//! **byte-identical** to the one-shot report, and shutdown drains
//! cleanly.  This is the CI guard for the wire protocol + shared-cache
//! serving path; the measured version is `repstream-bench`'s
//! `load_test`.

use repstream::core::model::{Application, Mapping, Platform, System};
use repstream::core::report::{system_report_status, ReportOptions, ReportStatus};
use repstream::core::wire::{AnalyzeRequest, Request, Response, WireOptions};
use repstream::serve::{Client, ServeOptions, Server};

/// Deterministic system with the given team sizes; distinct seeds give
/// distinct chain-cache signatures.
fn system_with_teams(teams: &[usize], seed: u64) -> System {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).max(3);
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        1.0 + (x >> 40) as f64 / 64.0
    };
    let stages = teams.len();
    let work: Vec<f64> = (0..stages).map(|_| next()).collect();
    let files: Vec<f64> = (0..stages - 1).map(|_| next()).collect();
    let m: usize = teams.iter().sum();
    let speeds: Vec<f64> = (0..m).map(|_| next()).collect();
    let app = Application::new(work, files).unwrap();
    let platform = Platform::complete(speeds, next()).unwrap();
    let mut start = 0;
    let mapping = Mapping::new(
        teams
            .iter()
            .map(|&r| {
                start += r;
                (start - r..start).collect()
            })
            .collect(),
    )
    .unwrap();
    System::new(app, platform, mapping).unwrap()
}

fn main() {
    let mut threads = 2usize;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--threads" => {
                i += 1;
                threads = argv[i].parse().expect("--threads needs a count");
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    let queries_per_thread = 50usize.div_ceil(threads.max(1));

    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: threads.max(1),
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let server = std::sync::Arc::new(server);
    let run = {
        let server = server.clone();
        std::thread::spawn(move || server.run())
    };

    let hot = system_with_teams(&[2, 3], 2010);
    let (oneshot_text, oneshot_status) = system_report_status(&hot, ReportOptions::default());
    assert_eq!(oneshot_status, ReportStatus::Ok);

    std::thread::scope(|s| {
        for tid in 0..threads as u64 {
            let (hot, oneshot_text) = (&hot, &oneshot_text);
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for q in 0..queries_per_thread as u64 {
                    match q % 4 {
                        // The repeated hot shape: warm after the first
                        // build, byte-identical to the one-shot report.
                        0 | 1 => {
                            let resp = client
                                .call(&Request::Analyze(AnalyzeRequest {
                                    system: hot.clone(),
                                    options: WireOptions::default(),
                                }))
                                .expect("hot analyze");
                            match resp {
                                Response::Analyze(a) => {
                                    assert_eq!(a.status, ReportStatus::Ok);
                                    assert_eq!(
                                        &a.text, oneshot_text,
                                        "served hot response diverged from one-shot"
                                    );
                                }
                                other => panic!("unexpected response {other:?}"),
                            }
                        }
                        // A never-seen shape: always a cold build.
                        2 => {
                            let sys = system_with_teams(&[2, 2], (tid << 32) | q | 1 << 60);
                            let resp = client
                                .call(&Request::Analyze(AnalyzeRequest {
                                    system: sys,
                                    options: WireOptions::default(),
                                }))
                                .expect("cold analyze");
                            match resp {
                                Response::Analyze(a) => assert_eq!(a.status, ReportStatus::Ok),
                                other => panic!("unexpected response {other:?}"),
                            }
                        }
                        // An already-expired (0 ms) deadline on a fresh
                        // shape: the ladder degrades to bounds, never
                        // errors.
                        _ => {
                            let sys = system_with_teams(&[2, 2, 1], (tid << 32) | q | 1 << 61);
                            let resp = client
                                .call(&Request::Analyze(AnalyzeRequest {
                                    system: sys,
                                    options: WireOptions {
                                        deadline_ms: Some(0),
                                        ..Default::default()
                                    },
                                }))
                                .expect("deadline analyze");
                            match resp {
                                Response::Analyze(a) => assert!(
                                    matches!(a.status, ReportStatus::Degraded(_)),
                                    "deadline-capped query must degrade, got {:?}",
                                    a.status
                                ),
                                other => panic!("unexpected response {other:?}"),
                            }
                        }
                    }
                }
            });
        }
    });

    let mut client = Client::connect(addr).expect("connect");
    let stats = match client.call(&Request::Stats).expect("stats") {
        Response::Stats(s) => s,
        other => panic!("unexpected response {other:?}"),
    };
    let hits = stats.cache.strict_hits + stats.cache.pattern_hits;
    let misses = stats.cache.strict_misses + stats.cache.pattern_misses;
    assert!(hits > 0, "repeated shapes must produce warm hits");
    assert!(
        client
            .call(&Request::Shutdown)
            .is_ok_and(|r| matches!(r, Response::ShuttingDown)),
        "shutdown handshake"
    );
    drop(client);
    run.join()
        .expect("server thread")
        .expect("clean server shutdown");

    println!(
        "serve_smoke: {} queries on {threads} client threads, {} requests served, \
         cache {hits} hits / {misses} misses (warm ratio {:.2}), bitwise-equal hot responses, \
         clean shutdown",
        queries_per_thread * threads,
        stats.requests,
        hits as f64 / (hits + misses).max(1) as f64,
    );
}
