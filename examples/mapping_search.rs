//! Mapping construction with the throughput evaluators (the paper's §8
//! "future work", implemented).
//!
//! ```sh
//! cargo run --release --example mapping_search
//! ```
//!
//! On the 12-processor heterogeneous `mapping_search` scenario, compare
//! the three classic heuristics — greedy, random search, hill-climbing
//! from one-to-one — then run the engine's **portfolio driver** (greedy +
//! parallel random batch + delta-scored hill climbing + exponential
//! re-rank), which composes all of them over the batch evaluation engine.

use repstream::core::mapping_opt::{greedy, local_search, random_search};
use repstream::core::model::{Mapping, SystemRef};
use repstream::core::{deterministic, exponential};
use repstream::engine::{portfolio_search, PortfolioOptions};
use repstream::petri::shape::ExecModel;
use repstream::workload::scenarios;

fn main() {
    // Two heavy *adjacent* stages: the best mappings replicate both, so
    // the transfer between them becomes a u×v pattern where deterministic
    // and exponential throughputs genuinely differ (Theorem 4).
    let (app, platform) = scenarios::mapping_search();
    let model = ExecModel::Overlap;

    let g = greedy(&app, &platform, model).expect("greedy");
    let r = random_search(&app, &platform, model, 200, 17).expect("random");
    let start = Mapping::new(vec![vec![0], vec![1], vec![2], vec![3]]).expect("start");
    let l = local_search(&app, &platform, &start, model, 50).expect("local");

    println!("strategy        det-throughput  teams");
    for (name, sm) in [("greedy", &g), ("random(200)", &r), ("local-search", &l)] {
        println!(
            "{name:<15} {:>14.5}  {:?}",
            sm.throughput,
            sm.mapping.teams()
        );
    }

    // Re-rank the candidates under exponential variability: robustness can
    // reorder them (Theorem 7: variability punishes replicated columns).
    println!("\nunder exponential times:");
    for (name, sm) in [("greedy", &g), ("random(200)", &r), ("local-search", &l)] {
        let sys = SystemRef::new(&app, &platform, &sm.mapping).expect("valid candidate");
        let exp = exponential::throughput_overlap(sys).expect("exp");
        let det = deterministic::analyze(sys, ExecModel::Overlap).throughput;
        println!(
            "{name:<15} exp {:.5} (det {:.5}, robustness {:.1}%)",
            exp.throughput,
            det,
            100.0 * exp.throughput / det
        );
    }

    // The portfolio driver runs all of the above on the batch engine:
    // zero-clone scoring, memoized pattern periods, chunk-parallel random
    // batches, O(affected) hill-climb rescoring, chain-cached re-rank.
    let report = portfolio_search(
        &app,
        &platform,
        PortfolioOptions {
            random_candidates: 512,
            seed: 17,
            ..Default::default()
        },
    )
    .expect("portfolio");
    println!("\nportfolio finalists (det-ranked, exp re-ranked):");
    for c in &report.finalists {
        println!(
            "{:<11} det {:.5}  exp {:.5}  {:?}",
            c.origin,
            c.det,
            c.exp.expect("re-rank on"),
            c.mapping.teams()
        );
    }
    println!(
        "evaluations: {} det (batch) + {} delta column recomputes + {} exp \
         (chain cache: {} hits / {} misses)",
        report.det_evaluations,
        report.delta_recomputes,
        report.exp_evaluations,
        report.exp_cache.hits(),
        report.exp_cache.misses(),
    );
}
