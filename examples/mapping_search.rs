//! Mapping construction with the throughput evaluators (the paper's §8
//! "future work", implemented).
//!
//! ```sh
//! cargo run --release --example mapping_search
//! ```
//!
//! Given an application and a 12-processor heterogeneous platform, compare
//! three ways of building a one-to-many mapping — greedy, random search,
//! and hill-climbing from one-to-one — each scored by the deterministic
//! evaluator, then re-rank the winners under exponential variability.

use repstream::core::mapping_opt::{greedy, local_search, random_search};
use repstream::core::model::{Application, Mapping, Platform, System};
use repstream::core::{deterministic, exponential};
use repstream::petri::shape::ExecModel;

fn main() {
    // Two heavy *adjacent* stages: the best mappings replicate both, so
    // the transfer between them becomes a u×v pattern where deterministic
    // and exponential throughputs genuinely differ (Theorem 4).
    let app = Application::new(vec![8.0, 30.0, 45.0, 12.0], vec![4.0, 6.0, 3.0]).expect("app");
    let speeds = vec![3.0, 3.0, 2.5, 2.5, 2.0, 2.0, 2.0, 1.5, 1.5, 1.0, 1.0, 1.0];
    let platform = Platform::complete(speeds, 0.45).expect("platform");
    let model = ExecModel::Overlap;

    let g = greedy(&app, &platform, model).expect("greedy");
    let r = random_search(&app, &platform, model, 200, 17).expect("random");
    let start = Mapping::new(vec![vec![0], vec![1], vec![2], vec![3]]).expect("start");
    let l = local_search(&app, &platform, &start, model, 50).expect("local");

    println!("strategy        det-throughput  teams");
    for (name, sm) in [("greedy", &g), ("random(200)", &r), ("local-search", &l)] {
        println!(
            "{name:<15} {:>14.5}  {:?}",
            sm.throughput,
            sm.mapping.teams()
        );
    }

    // Re-rank the candidates under exponential variability: robustness can
    // reorder them (Theorem 7: variability punishes replicated columns).
    println!("\nunder exponential times:");
    for (name, sm) in [("greedy", &g), ("random(200)", &r), ("local-search", &l)] {
        let sys = System::new(app.clone(), platform.clone(), sm.mapping.clone()).unwrap();
        let exp = exponential::throughput_overlap(&sys).expect("exp");
        let det = deterministic::analyze(&sys, ExecModel::Overlap).throughput;
        println!(
            "{name:<15} exp {:.5} (det {:.5}, robustness {:.1}%)",
            exp.throughput,
            det,
            100.0 * exp.throughput / det
        );
    }
}
