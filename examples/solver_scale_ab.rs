//! Top-end solver A/B on a ≥ 2²⁰-state Theorem 2 quotient: restarted
//! GMRES against uniformized power iteration on the direct quotient of
//! the homogeneous 6×7 Strict scenario (1 081 344 lumped states standing
//! for 45.4M full ones).  Both solve the same chain to the same residual
//! class, so the throughputs must agree to 1e-10 relative — CI runs this
//! to pin the Krylov path at the scale it exists for, and the printed
//! wall times record the top-end crossover the measured solver plan
//! encodes (where SOR, not GMRES, is the primary).
//!
//! `--teams a,b` swaps in a smaller shape (e.g. `--teams 4,5` for a
//! quick local run).
//!
//! ```sh
//! cargo run --release --example solver_scale_ab
//! cargo run --release --example solver_scale_ab -- --teams 5,6
//! ```

use repstream::markov::marking::{MarkingOptions, QuotientGraph};
use repstream::markov::net::EventNet;
use repstream::petri::shape::{ExecModel, MappingShape, ResourceTable};
use repstream::petri::tpn::Tpn;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut teams = vec![6usize, 7];
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--teams" => {
                i += 1;
                teams = args
                    .get(i)
                    .map(|s| {
                        s.split(',')
                            .map(|t| t.parse().expect("--teams needs integers"))
                            .collect()
                    })
                    .expect("--teams needs a,b[,c]");
            }
            other => panic!("unknown argument {other} (only --teams a,b is accepted)"),
        }
        i += 1;
    }

    // Homogeneous Strict scenario: uniform rates keep the row rotation,
    // so the Theorem 2 chain lumps m-fold onto the canonical-marking
    // quotient the solvers run on.
    let shape = MappingShape::new(teams.clone());
    let tpn = Tpn::build(&shape, ExecModel::Strict);
    let rates = ResourceTable::from_fns(&shape, |_, _| 0.5, |_, _, _| 2.0);
    let (net, sym) = EventNet::from_tpn_with_symmetry(&tpn, &rates);
    let sym = sym.expect("homogeneous table keeps the row rotation");
    let last = tpn.last_column();

    let t = std::time::Instant::now();
    let qg = QuotientGraph::build(
        &net,
        &sym,
        MarkingOptions {
            max_states: 1 << 22,
            capacity: None,
            ..Default::default()
        },
    )
    .expect("quotient build");
    let t_build = t.elapsed();
    println!(
        "teams {teams:?}: quotient {} states for {} full, built in {t_build:?}",
        qg.n_states(),
        qg.full_states()
    );

    // Both solvers run to an explicit residual well below the forced
    // budgets — residual-to-throughput amplification grows with the
    // spectral gap (~10²–10³× at these sizes), so near-machine residuals
    // keep the 1e-10 agreement honest.
    let rho_of = |pi: &[f64]| -> f64 {
        let rates = qg.firing_rates_with(&net.rates, pi);
        last.iter().map(|&t| rates[t]).sum()
    };
    let t = std::time::Instant::now();
    let pi_gmres = qg.ctmc.stationary_gmres(1e-14, 200_000);
    let t_gmres = t.elapsed();
    let rho_gmres = rho_of(&pi_gmres);
    println!(
        "gmres rho = {rho_gmres:.12}  (residual {:.3e}, {t_gmres:?})",
        qg.ctmc.stationarity_residual(&pi_gmres)
    );
    let t = std::time::Instant::now();
    let pi_power = qg.ctmc.stationary_power(1e-13, 500_000);
    let t_power = t.elapsed();
    let rho_power = rho_of(&pi_power);
    println!(
        "power rho = {rho_power:.12}  (residual {:.3e}, {t_power:?})",
        qg.ctmc.stationarity_residual(&pi_power)
    );

    let diff = (rho_gmres - rho_power).abs();
    assert!(
        diff <= 1e-10 * rho_power.abs(),
        "solvers diverged: gmres {rho_gmres} vs power {rho_power}"
    );
    println!(
        "OK: gmres and power agree (|diff| = {diff:.3e}); gmres/power wall-time = {:.2}",
        t_gmres.as_secs_f64() / t_power.as_secs_f64()
    );
}
