//! Multi-application joint allocation on a shared platform.
//!
//! ```sh
//! cargo run --release --example workload_alloc
//! ```
//!
//! Two tenants of the `shared_platform` scenario — the 4-stage
//! mapping-search chain twice, the second with weight 2 and a 0.02 jobs/s
//! SLA — contend for the 12 heterogeneous processors.  The joint search
//! runs once per objective:
//!
//! * **maxmin** — maximize the worst weighted per-app throughput (fair);
//! * **weighted** — maximize the weighted sum (total goodput, may starve
//!   a tenant);
//! * **sla** — maximize the worst SLA headroom (`ρ / sla`, feasible iff
//!   ≥ 1).
//!
//! The smoke assertion at the end is the fairness/efficiency trade-off
//! itself: the max-min winner's *minimum* per-app throughput is at least
//! the weighted winner's — a weighted-sum objective is free to starve the
//! slow app, max-min is not.

use repstream::engine::{workload_search, Objective, WorkloadSearchOptions};
use repstream::workload::scenarios;

fn main() {
    let workload = scenarios::shared_platform(2);
    println!(
        "joint allocation: {} apps on {} shared processors\n",
        workload.n_apps(),
        workload.platform().n_processors()
    );

    let mut min_by_objective = Vec::new();
    for objective in [Objective::MaxMin, Objective::Weighted, Objective::Sla] {
        let report = workload_search(
            &workload,
            WorkloadSearchOptions {
                objective,
                random_candidates: 256,
                seed: 2010,
                ..Default::default()
            },
        )
        .expect("search");
        let best = &report.best;
        let min = best.per_app.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "objective {:<9} winner {:<10} per-app det {:?}  (min {:.5})",
            objective.label(),
            best.origin,
            best.per_app
                .iter()
                .map(|r| (r * 1e5).round() / 1e5)
                .collect::<Vec<_>>(),
            min
        );
        println!(
            "  contention: {} shared processors, {} shared links, busiest carries {} apps",
            report.contention.shared_processors,
            report.contention.shared_links,
            report.contention.max_processor_users
        );
        println!(
            "  evaluations: {} det + {} delta recomputes + {} exp \
             (shared chain cache: {} hits / {} misses)",
            report.det_evaluations,
            report.delta_recomputes,
            report.exp_evaluations,
            report.exp_cache.hits(),
            report.exp_cache.misses(),
        );
        min_by_objective.push((objective, min));
    }

    // The CI smoke check: fairness means the max-min winner cannot leave
    // any app below what the weighted-sum winner leaves its worst app.
    let maxmin_min = min_by_objective[0].1;
    let weighted_min = min_by_objective[1].1;
    assert!(
        maxmin_min >= weighted_min,
        "max-min winner's worst app ({maxmin_min}) fell below the \
         weighted winner's worst app ({weighted_min})"
    );
    println!(
        "\nfairness check: maxmin min-throughput {maxmin_min:.5} >= \
         weighted min-throughput {weighted_min:.5}  ok"
    );
}
