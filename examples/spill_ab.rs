//! Release A/B smoke of the sharded spill-capable interner (CI): the
//! Theorem 2 direct quotient built with spill forced on (tiny limit, so
//! payload bytes really go through the temp file) and the interner
//! sharded must be **bitwise** identical to the resident single-shard
//! reference — states, orbit sizes, representative bytes, enabled sets,
//! chain bits, and the end-to-end throughput.
//!
//! A second leg points the same machinery at the 10M-class 7×8 shape
//! under a deliberately small `max_states` budget: the spilled and the
//! resident BFS must walk the identical prefix and refuse at the same
//! budget, proving the spill path takes the big-shape route without
//! perturbing the scan order.  (The full 7×8 build-and-solve is the
//! `ten_million` section of `perf_snapshot` — minutes, not smoke.)
//!
//! ```sh
//! cargo run --release --example spill_ab
//! ```

use repstream::core::exponential::{throughput_strict_report, ExpOptions};
use repstream::core::model::{Application, Mapping, Platform, System};
use repstream::markov::marking::{ArenaCompression, MarkingError, MarkingOptions, QuotientGraph};
use repstream::markov::net::EventNet;
use repstream::petri::shape::{ExecModel, MappingShape, ResourceTable};
use repstream::petri::tpn::Tpn;

/// Spill limit small enough that every build parks bytes on disk.
const TINY_SPILL: usize = 4 << 10;

fn quotient_for(teams: &[usize], opts: MarkingOptions) -> Result<QuotientGraph, MarkingError> {
    let shape = MappingShape::new(teams.to_vec());
    let tpn = Tpn::build(&shape, ExecModel::Strict);
    let rates = ResourceTable::from_fns(&shape, |_, _| 0.5, |_, _, _| 2.0);
    let (net, sym) = EventNet::from_tpn_with_symmetry(&tpn, &rates);
    let sym = sym.expect("homogeneous table keeps the row rotation");
    QuotientGraph::build(&net, &sym, opts)
}

fn opts(threads: usize, shards: usize, spill: bool, max_states: usize) -> MarkingOptions {
    MarkingOptions {
        max_states,
        capacity: None,
        threads,
        arena_compression: ArenaCompression::Auto,
        interner_shards: shards,
        interner_spill: spill,
        spill_limit: if spill { TINY_SPILL } else { 0 },
        ..Default::default()
    }
}

fn main() {
    // Leg 1: 5×6 quotient, spilled+sharded matrix vs resident reference.
    let t = std::time::Instant::now();
    let reference = quotient_for(&[5, 6], opts(1, 1, false, 1 << 22)).expect("reference build");
    println!(
        "5x6 reference: {} states ({} full), {:?}, {} arena+interner bytes resident",
        reference.n_states(),
        reference.full_states(),
        t.elapsed(),
        reference.arena_stats().total()
    );
    let (mut buf_a, mut buf_b) = (Vec::new(), Vec::new());
    for threads in [1usize, 2, 4] {
        for shards in [4usize, 16] {
            let what = format!("threads {threads} shards {shards} spill on");
            let t = std::time::Instant::now();
            let qg = quotient_for(&[5, 6], opts(threads, shards, true, 1 << 22)).expect(&what);
            let stats = qg.arena_stats();
            assert!(
                stats.spill_bytes > 0,
                "{what}: a {TINY_SPILL}-byte limit must actually spill"
            );
            assert_eq!(qg.n_states(), reference.n_states(), "{what}: states");
            assert_eq!(qg.orbit_sizes(), reference.orbit_sizes(), "{what}: orbits");
            for s in 0..reference.n_states() {
                assert_eq!(
                    qg.reps.read_into(s, &mut buf_a),
                    reference.reps.read_into(s, &mut buf_b),
                    "{what}: representative {s}"
                );
                assert_eq!(qg.enabled(s), reference.enabled(s), "{what}: enabled {s}");
                assert_eq!(
                    qg.ctmc.row_targets(s),
                    reference.ctmc.row_targets(s),
                    "{what}: targets {s}"
                );
                for (x, y) in qg.ctmc.row_rates(s).iter().zip(reference.ctmc.row_rates(s)) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{what}: rate bits of {s}");
                }
            }
            println!(
                "{what}: bitwise OK, {:?}, {} bytes spilled / {} resident",
                t.elapsed(),
                stats.spill_bytes,
                stats.total()
            );
        }
    }

    // End-to-end throughput through the public API must also be bitwise.
    let app = Application::uniform(2, 6.0, 12.0).expect("valid app");
    let platform = Platform::complete(vec![2.0; 11], 1.0).expect("valid platform");
    let mapping = Mapping::new(vec![(0..5).collect(), (5..11).collect()]).expect("valid mapping");
    let system = System::new(app, platform, mapping).expect("valid system");
    let resident = throughput_strict_report(&system, ExpOptions::default()).expect("resident");
    let spilled = throughput_strict_report(
        &system,
        ExpOptions {
            interner_spill: true,
            ..Default::default()
        },
    )
    .expect("spilled");
    assert_eq!(
        resident.throughput.to_bits(),
        spilled.throughput.to_bits(),
        "spill must be storage-only: {} vs {}",
        resident.throughput,
        spilled.throughput
    );
    println!(
        "5x6 end-to-end: rho = {:.12} (resident and spilled bitwise equal, \
         solver={} precond={} iters={})",
        spilled.throughput,
        spilled.solver.label(),
        spilled.precond.label(),
        spilled.iterations
    );

    // Leg 2: budget-capped 7×8 prefix — the 10M-class shape.  Both modes
    // must walk the identical BFS prefix and refuse at the same budget.
    const PREFIX_BUDGET: usize = 150_000;
    for threads in [1usize, 2] {
        let t = std::time::Instant::now();
        let resident = quotient_for(&[7, 8], opts(threads, 1, false, PREFIX_BUDGET)).err();
        let spilled = quotient_for(&[7, 8], opts(threads, 16, true, PREFIX_BUDGET)).err();
        let what = format!("7x8 prefix, threads {threads}");
        assert_eq!(
            resident,
            Some(MarkingError::TooManyStates(PREFIX_BUDGET)),
            "{what}: resident run must refuse at the budget"
        );
        assert_eq!(
            spilled, resident,
            "{what}: spilled run must refuse identically"
        );
        println!(
            "{what}: both modes refused at {PREFIX_BUDGET} states, {:?}",
            t.elapsed()
        );
    }
    println!("OK: sharded + spilled builds are bitwise identical to the resident reference");
}
