//! Capacity planning on a heterogeneous cluster with the N.B.U.E. bounds.
//!
//! ```sh
//! cargo run --release --example cluster_capacity
//! ```
//!
//! A data-analysis chain (filter → featurize → classify) must sustain a
//! target ingest rate, but stage times fluctuate (N.B.U.E.).  Theorem 7
//! lets us *guarantee* a rate without knowing the exact law: the
//! exponential analysis is a certified lower bound.  We sweep the
//! replication of the heavy stage and report, for each team size, the
//! guaranteed rate, the optimistic (deterministic) rate, and a simulated
//! Gamma(3) run — watching the communication column become the binding
//! resource.

use repstream::core::model::{Application, Mapping, Platform, SystemRef};
use repstream::core::simulate::{monte_carlo_family, MonteCarloOptions, SimEngine};
use repstream::core::{bounds, exponential};
use repstream::petri::shape::ExecModel;
use repstream::stochastic::law::LawFamily;

fn main() {
    let target = 0.8; // data sets per second

    println!("replicas  guaranteed  optimistic  Gamma(3) sim  binding component");
    for replicas in 1..=8usize {
        // filter (replicated on two nodes), featurize (heavy, replication
        // swept), classify (fast).  The filter→featurize transfer is the
        // interesting column: once featurize is wide enough, the 2×R
        // communication pattern binds, and there the deterministic and
        // exponential analyses genuinely disagree (Theorem 4).
        let app = Application::new(vec![4.0, 10.0, 1.0], vec![2.0, 0.5]).expect("app");
        let mut speeds = vec![2.0, 2.0];
        speeds.extend(vec![2.0; replicas]);
        speeds.push(8.0);
        let platform = Platform::complete(speeds, 1.0).expect("platform");
        let mapping = Mapping::new(vec![
            vec![0, 1],
            (2..2 + replicas).collect(),
            vec![replicas + 2],
        ])
        .expect("mapping");
        // Borrowed view: validation only, no Application/Platform/Mapping
        // clones — the same zero-copy path the batch engine scores with.
        let system = SystemRef::new(&app, &platform, &mapping).expect("system");

        let b = bounds::nbue_bounds(system, ExecModel::Overlap).expect("bounds");
        let exp = exponential::throughput_overlap(system).expect("exp");
        let sim = monte_carlo_family(
            system,
            ExecModel::Overlap,
            LawFamily::Gamma(3.0),
            MonteCarloOptions {
                datasets: 20_000,
                warmup: 2_000,
                replications: 4,
                seed: 11,
                engine: SimEngine::Chain,
                total_rate_metric: false,
            },
        );
        let ok = b.lower >= target;
        println!(
            "{replicas:>8}  {:>10.4}  {:>10.4}  {:>12.4}  {:?}{}",
            b.lower,
            b.upper,
            sim.mean,
            exp.bottleneck.place,
            if ok { "   <- meets target" } else { "" }
        );
        assert!(
            b.contains(sim.mean, 0.03),
            "Gamma(3) run escaped the sandwich: {} not in [{}, {}]",
            sim.mean,
            b.lower,
            b.upper
        );
    }
    println!("\ntarget rate: {target} /s — the guarantee needs the exponential bound,");
    println!("not the deterministic estimate; the sandwich held in every run.");
}
