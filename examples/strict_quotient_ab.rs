//! A/B smoke of the Theorem 2 paths on the homogeneous 4×5 Strict
//! scenario: the direct canonical-marking quotient (`lumping: true`, the
//! default) against the full-chain solve (`lumping: false`, the CLI's
//! `--no-lump`).  Both are exact, so the throughputs must agree to
//! rounding — CI runs this to pin the equivalence end to end through the
//! public `throughput_strict_report` API.
//!
//! `--threads N` forces the worker count of the chunk-parallel
//! quotient-frontier BFS (0 = auto) — CI runs this smoke at 2 threads so
//! the parallel path is exercised and its bitwise-determinism contract
//! checked even though 1-core runners see no speedup.
//!
//! A third leg re-runs the direct-quotient path with the delta-compressed
//! marking arena forced on: compression is storage-only, so its
//! throughput must be **bitwise** equal to the flat-arena run.
//!
//! ```sh
//! cargo run --release --example strict_quotient_ab
//! cargo run --release --example strict_quotient_ab -- --threads 2
//! ```

use repstream::core::exponential::{throughput_strict_report, ExpOptions, StrictMethod};
use repstream::core::model::{Application, Mapping, Platform, System};
use repstream::markov::marking::ArenaCompression;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--threads needs a count (0 = auto)");
            }
            other => panic!("unknown argument {other} (only --threads N is accepted)"),
        }
        i += 1;
    }

    // Homogeneous 4×5 Strict scenario: two stages on teams of 4 and 5,
    // uniform speeds and bandwidths, m = lcm(4, 5) = 20.
    let app = Application::uniform(2, 6.0, 12.0).expect("valid app");
    let platform = Platform::complete(vec![2.0; 9], 1.0).expect("valid platform");
    let mapping = Mapping::new(vec![(0..4).collect(), (4..9).collect()]).expect("valid mapping");
    let system = System::new(app, platform, mapping).expect("valid system");

    let t = std::time::Instant::now();
    let direct = throughput_strict_report(
        &system,
        ExpOptions {
            threads,
            ..Default::default()
        },
    )
    .expect("direct path");
    let t_direct = t.elapsed();
    let t = std::time::Instant::now();
    let full = throughput_strict_report(
        &system,
        ExpOptions {
            lumping: false,
            threads,
            ..Default::default()
        },
    )
    .expect("full path");
    let t_full = t.elapsed();
    let t = std::time::Instant::now();
    let compressed = throughput_strict_report(
        &system,
        ExpOptions {
            threads,
            arena_compression: ArenaCompression::On,
            ..Default::default()
        },
    )
    .expect("compressed-arena path");
    let t_compressed = t.elapsed();

    println!("threads: {} (0 = auto)", threads);
    println!(
        "direct-quotient: rho = {:.12}  ({} states solved for {} full, {:?})",
        direct.throughput,
        direct.lumped_states.expect("homogeneous 4x5 lumps"),
        direct.full_states,
        t_direct
    );
    println!(
        "full chain:      rho = {:.12}  ({} states, {:?})",
        full.throughput, full.full_states, t_full
    );
    println!(
        "compressed:      rho = {:.12}  (delta arena, {:?})",
        compressed.throughput, t_compressed
    );

    assert_eq!(direct.method, StrictMethod::DirectQuotient);
    assert_eq!(full.method, StrictMethod::Full);
    assert_eq!(direct.full_states, full.full_states, "state accounting");
    assert_eq!(
        direct.full_states,
        direct.lumped_states.unwrap() * 20,
        "reduction is exactly m-fold"
    );
    let diff = (direct.throughput - full.throughput).abs();
    assert!(
        diff <= 1e-12 * full.throughput,
        "paths diverged: {} vs {}",
        direct.throughput,
        full.throughput
    );
    assert_eq!(compressed.method, StrictMethod::DirectQuotient);
    assert_eq!(
        compressed.throughput.to_bits(),
        direct.throughput.to_bits(),
        "compressed arena must be storage-only: {} vs {}",
        compressed.throughput,
        direct.throughput
    );
    println!("OK: all paths agree (|direct - full| = {diff:.3e}, compressed bitwise)");
}
